//! The platform-generic report subsystem.
//!
//! [`BenchReport::collect`] runs **any** [`Platform`] list over the
//! dataset × model grid and captures one machine-readable record per
//! (cell, platform): simulated latency, DRAM traffic, bandwidth
//! utilization, per-stage breakdown, buffer hit rate, platform-specific
//! extras (accelerator cycles, frontend session stats), speedup against
//! the list's first platform, and harness wall-clock. The same report
//! renders as markdown ([`BenchReport::to_markdown`]) and as the stable
//! `gdr-bench/v1` JSON schema ([`BenchReport::to_json`], documented in
//! `bench/README.md`) that the `gdr-bench` binary writes and the CI
//! perf gate compares with [`compare`].
//!
//! Everything but wall-clock is a deterministic function of
//! `(seed, scale)` — the simulators are cycle-accurate models, not
//! measurements — so two runs of the same commit produce byte-identical
//! metric values on any machine, and a regression in the JSON diff is a
//! real modeling change, never timer noise. [`compare`] therefore gates
//! on simulated metrics only ([`GATED_METRICS`]) and ignores the
//! wall-clock fields.

use std::time::Instant;

use gdr_accel::platform::Platform;
use gdr_accel::report::geomean;
use gdr_hetgraph::datasets::Dataset;
use gdr_hetgraph::GdrResult;
use gdr_hgnn::model::ModelKind;

use crate::ablations::AblationReport;
use crate::experiments::{
    fig10, fig2, fig7, fig8, fig9, motivation_l2, table2, table3, Fig10, Fig2, Fig7, Fig8, Fig9,
};
use crate::grid::{cell_inputs, run_grid, run_platforms, ExperimentConfig};
use crate::json::Json;
use crate::markdown::{f2, table};
use crate::trace_export::ChromeTrace;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "gdr-bench/v1";

/// Metrics the CI perf gate exits nonzero on (both lower-is-better).
/// The remaining fields are recorded for observability but not gated:
/// they are either derived from these (accesses, utilization), direction-
/// ambiguous (stage split), or nondeterministic (wall-clock).
pub const GATED_METRICS: &[&str] = &["time_ns", "dram_bytes"];

/// Serve-family metrics the gate compares, as `(key, higher_is_better)`:
/// tail latency must not grow, throughput must not shrink, the
/// cross-batch feature cache must not lose hits, and partial-replica
/// routing must not start missing shards. The remaining serve metrics
/// (mean/max latency, queue depths, batch shape, autoscale shape) are
/// observability-only.
pub const SERVE_GATED_METRICS: &[(&str, bool)] = &[
    ("p99_ns", false),
    ("throughput_rps", true),
    ("cache_hit_rate", true),
    ("shard_miss_count", false),
];

/// Fault-family serve metrics the gate compares **only when the baseline
/// records them**, as `(key, higher_is_better)`. Pre-fault baselines
/// simply lack these keys, so they parse and gate unchanged
/// (default-absent, not gated-to-zero); once a baseline pins them, a
/// current report missing one fails the gate like any other gated
/// metric. Availability must not shrink; failover time, the
/// under-failure tail, and the re-issue volume must not grow.
pub const SERVE_FAULT_GATED_METRICS: &[(&str, bool)] = &[
    ("availability", true),
    ("p99_under_failure_ns", false),
    ("failover_ns", false),
    ("requeued_batches", false),
];

/// Cost-family serve metrics the gate compares **only when the baseline
/// pins them**, as `(key, higher_is_better)` — the same conditional
/// convention as [`SERVE_FAULT_GATED_METRICS`]. This is the "meet the
/// SLO at minimum replica-seconds" half of the serving evaluation:
/// once a baseline records a scenario's `replica_seconds` (cost of
/// goods) and `slo_violation_rate`, neither may grow. Baselines written
/// before these keys existed parse and gate unchanged.
pub const SERVE_COST_GATED_METRICS: &[(&str, bool)] =
    &[("replica_seconds", false), ("slo_violation_rate", false)];

/// The canonical metric keys of a [`ServeRunRecord`], in serialization
/// order. `gdr-serve` emits exactly this set; the golden-file schema test
/// pins it. `replica_seconds` — the integral of active replicas over
/// virtual time — is the serving cost-of-goods metric, and
/// `slo_violation_rate` the fraction of completions that blew the
/// scenario's SLO target (0 when no SLO is set); both are deterministic
/// (virtual time, not wall clock) and gated conditionally via
/// [`SERVE_COST_GATED_METRICS`] — only when the baseline pins them.
pub const SERVE_METRIC_KEYS: &[&str] = &[
    "completed",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "mean_ns",
    "max_ns",
    "throughput_rps",
    "batches",
    "mean_batch_size",
    "mean_queue_depth",
    "max_queue_depth",
    "makespan_ns",
    "dram_bytes",
    "cache_hit_rate",
    "shard_miss_count",
    "replicas_max",
    "cold_start_ns",
    "replica_seconds",
    "dropped",
    "availability",
    "p99_under_failure_ns",
    "failover_ns",
    "requeued_batches",
    "slo_violation_rate",
];

/// The canonical metric keys of a [`HostRecord`], in serialization
/// order. Host records measure **wall-clock** restructuring throughput
/// of the machine running the report — they are reported for
/// observability (the `host` family of `gdr-bench/v1`) but never gated:
/// wall clock is machine-dependent and nondeterministic, so
/// [`compare`] ignores them entirely.
pub const HOST_METRIC_KEYS: &[&str] = &[
    "graphs",
    "passes",
    "wall_clock_s",
    "graphs_per_sec",
    "ns_per_graph",
];

/// One host-side throughput measurement: how fast this machine's
/// frontend software restructures a dataset's semantic graphs, for one
/// execution strategy (fresh workspace per graph, reused workspace,
/// parallel lanes). The `host` record family of `gdr-bench/v1`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostRecord {
    /// Measurement label (`"session/DBLP/reused"`).
    pub name: String,
    /// Stable-ordered numeric metrics, keyed by [`HOST_METRIC_KEYS`].
    pub metrics: Vec<(String, f64)>,
}

impl HostRecord {
    /// Looks up a metric by key (`"graphs_per_sec"`, `"ns_per_graph"`, …).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The host object of the `host` array in `gdr-bench/v1`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("name".to_string(), Json::from(self.name.as_str()))];
        fields.extend(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v))),
        );
        Json::Obj(fields)
    }

    /// Parses one object of the `host` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut name = None;
        let mut metrics = Vec::new();
        for (k, field) in v.as_obj().ok_or("host record is not an object")? {
            match (k.as_str(), field) {
                ("name", Json::Str(n)) => name = Some(n.clone()),
                (_, Json::Num(x)) => metrics.push((k.clone(), *x)),
                _ => return Err(format!("unexpected host record field {k:?}")),
            }
        }
        Ok(HostRecord {
            name: name.ok_or("host record: missing name")?,
            metrics,
        })
    }
}

/// One platform's aggregate over a serving scenario: the latency
/// histogram summary, throughput, and queue/batch shape for every
/// request the scenario's replicas of that platform served. The
/// `"ALL"` platform row aggregates the whole replica pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRunRecord {
    /// Platform label, or `"ALL"` for the pool-wide aggregate.
    pub platform: String,
    /// Stable-ordered numeric metrics, keyed by [`SERVE_METRIC_KEYS`].
    pub metrics: Vec<(String, f64)>,
}

impl ServeRunRecord {
    /// Looks up a metric by key (`"p99_ns"`, `"throughput_rps"`, …).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One serving scenario's record: the full configuration that produced
/// it (so reports are self-describing and the gate can match scenarios
/// across commits) plus one [`ServeRunRecord`] per platform and the
/// `"ALL"` aggregate. Every value is a deterministic function of the
/// configuration — serve records carry **no wall-clock**, which is what
/// makes `gdr-bench serve` output byte-for-byte reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenarioRecord {
    /// Stable scenario label the gate matches on
    /// (e.g. `"poisson-hi/size-capped/round-robin"`).
    pub scenario: String,
    /// Arrival process name (`"poisson"`, `"bursty"`, `"closed-loop"`).
    pub arrival: String,
    /// Nominal offered load in requests per second.
    pub rate_rps: f64,
    /// Batching policy label (`"immediate"`, `"size-capped:8"`, …).
    pub batch: String,
    /// Scheduler policy label (`"round-robin"`, `"least-loaded"`,
    /// `"shard-affinity"`, `"shard-affinity-partial"`).
    pub scheduler: String,
    /// Initial (minimum) replica pool size.
    pub replicas: u64,
    /// Dataset shards per replica (0 = full replicas).
    pub shards: u64,
    /// Per-replica feature-cache capacity, bytes (0 = disabled).
    pub cache_bytes: u64,
    /// Autoscaler label (`"off"`, or `"queue:UP:DOWN:maxN"`).
    pub autoscale: String,
    /// Fault-plan label (`"none"`, or `;`-joined `crash:R@AT+REC` /
    /// `slow:R*F` / `drop:P` / `deadline:N` segments, with a
    /// `control:vr` suffix when the replicated control plane is on).
    pub faults: String,
    /// Request-stream seed.
    pub seed: u64,
    /// Total requests generated.
    pub requests: u64,
    /// `"ALL"` first, then one record per distinct platform, pool order.
    pub runs: Vec<ServeRunRecord>,
}

impl ServeScenarioRecord {
    /// The scenario's pool-wide aggregate record, when present.
    pub fn aggregate(&self) -> Option<&ServeRunRecord> {
        self.runs.iter().find(|r| r.platform == "ALL")
    }

    /// The scenario object of the `serve` array in `gdr-bench/v1`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario.as_str())),
            ("arrival", Json::from(self.arrival.as_str())),
            ("rate_rps", Json::from(self.rate_rps)),
            ("batch", Json::from(self.batch.as_str())),
            ("scheduler", Json::from(self.scheduler.as_str())),
            ("replicas", Json::from(self.replicas)),
            ("shards", Json::from(self.shards)),
            ("cache_bytes", Json::from(self.cache_bytes)),
            ("autoscale", Json::from(self.autoscale.as_str())),
            ("faults", Json::from(self.faults.as_str())),
            ("seed", Json::from(self.seed)),
            ("requests", Json::from(self.requests)),
            (
                "runs",
                Json::arr(self.runs.iter().map(|r| {
                    let mut fields =
                        vec![("platform".to_string(), Json::from(r.platform.as_str()))];
                    fields.extend(r.metrics.iter().map(|(k, v)| (k.clone(), Json::from(*v))));
                    Json::Obj(fields)
                })),
            ),
        ])
    }

    /// Parses one scenario object of the `serve` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let string = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("serve scenario: missing string field {key:?}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("serve scenario: missing numeric field {key:?}"))
        };
        let mut runs = Vec::new();
        for r in v
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("serve scenario: missing runs")?
        {
            let mut platform = None;
            let mut metrics = Vec::new();
            for (k, field) in r.as_obj().ok_or("serve run is not an object")? {
                match (k.as_str(), field) {
                    ("platform", Json::Str(p)) => platform = Some(p.clone()),
                    (_, Json::Num(x)) => metrics.push((k.clone(), *x)),
                    _ => return Err(format!("unexpected serve run field {k:?}")),
                }
            }
            runs.push(ServeRunRecord {
                platform: platform.ok_or("serve run: missing platform")?,
                metrics,
            });
        }
        Ok(ServeScenarioRecord {
            scenario: string("scenario")?,
            arrival: string("arrival")?,
            rate_rps: num("rate_rps")?,
            batch: string("batch")?,
            scheduler: string("scheduler")?,
            replicas: num("replicas")? as u64,
            // The scale-out fields were added within the same schema id:
            // records written before them parse as an unsharded,
            // uncached, fixed pool.
            shards: v.get("shards").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            cache_bytes: v.get("cache_bytes").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            autoscale: v
                .get("autoscale")
                .and_then(Json::as_str)
                .unwrap_or("off")
                .to_string(),
            // Likewise: pre-fault records parse as fault-free scenarios.
            faults: v
                .get("faults")
                .and_then(Json::as_str)
                .unwrap_or("none")
                .to_string(),
            seed: num("seed")? as u64,
            requests: num("requests")? as u64,
            runs,
        })
    }
}

/// The objectives of the sweep Pareto frontier, as
/// `(serve metric key, higher_is_better)`: the tail must be short, the
/// throughput high, the replica-seconds (serving cost of goods) and
/// DRAM traffic low. [`dominates`] and [`pareto_frontier`] read
/// exactly these keys from a [`SweepRowRecord`].
pub const SWEEP_OBJECTIVES: &[(&str, bool)] = &[
    ("p99_ns", false),
    ("throughput_rps", true),
    ("replica_seconds", false),
    ("dram_bytes", false),
];

/// One row of a sweep's result table: the scenario label plus its
/// pool-wide aggregate values for the [`SWEEP_OBJECTIVES`] (and any
/// additional numeric columns a future sweep records).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRowRecord {
    /// Scenario label, unique within the sweep.
    pub scenario: String,
    /// Stable-ordered numeric metrics, the [`SWEEP_OBJECTIVES`] keys.
    pub metrics: Vec<(String, f64)>,
}

impl SweepRowRecord {
    /// Looks up a metric by key (`"p99_ns"`, `"replica_seconds"`, …).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The row object of a sweep's `table` array.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("scenario".to_string(), Json::from(self.scenario.as_str()))];
        fields.extend(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v))),
        );
        Json::Obj(fields)
    }

    /// Parses one row object of a sweep's `table` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut scenario = None;
        let mut metrics = Vec::new();
        for (k, field) in v.as_obj().ok_or("sweep row is not an object")? {
            match (k.as_str(), field) {
                ("scenario", Json::Str(s)) => scenario = Some(s.clone()),
                (_, Json::Num(x)) => metrics.push((k.clone(), *x)),
                _ => return Err(format!("unexpected sweep row field {k:?}")),
            }
        }
        Ok(SweepRowRecord {
            scenario: scenario.ok_or("sweep row: missing scenario")?,
            metrics,
        })
    }
}

/// Whether `a` Pareto-dominates `b` over [`SWEEP_OBJECTIVES`]: no
/// worse on every objective and strictly better on at least one. Rows
/// missing an objective on either side dominate nothing and nothing
/// dominates through them (the comparison is undefined, not zero).
pub fn dominates(a: &SweepRowRecord, b: &SweepRowRecord) -> bool {
    let mut strictly_better = false;
    for &(key, higher_is_better) in SWEEP_OBJECTIVES {
        let (Some(av), Some(bv)) = (a.metric(key), b.metric(key)) else {
            return false;
        };
        let (better, worse) = if higher_is_better {
            (av > bv, av < bv)
        } else {
            (av < bv, av > bv)
        };
        if worse {
            return false;
        }
        if better {
            strictly_better = true;
        }
    }
    strictly_better
}

/// The Pareto frontier of a sweep table over [`SWEEP_OBJECTIVES`]:
/// table indices of every row no other row [`dominates`], in table
/// order. Dominance is transitive, so every excluded row is dominated
/// by some *frontier* row — the property net in `crates/bench` pins
/// this.
pub fn pareto_frontier(table: &[SweepRowRecord]) -> Vec<usize> {
    (0..table.len())
        .filter(|&i| !table.iter().any(|other| dominates(other, &table[i])))
        .collect()
}

/// The recommendation a sweep resolves for an SLO: the *cheapest*
/// (minimum `replica_seconds`) frontier config whose tail meets the
/// p99 SLO, within the replica-seconds budget when one is given.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecommendation {
    /// The requested p99 ceiling, virtual ns.
    pub slo_p99_ns: f64,
    /// The requested cost ceiling, replica-seconds (0 = unbounded).
    pub budget_replica_seconds: f64,
    /// Whether any frontier config met the constraints.
    pub feasible: bool,
    /// The chosen scenario label; empty when infeasible.
    pub scenario: String,
    /// The chosen row's objective values; empty when infeasible.
    pub metrics: Vec<(String, f64)>,
}

impl SweepRecommendation {
    /// Looks up a chosen-row objective by key (`"p99_ns"`, …).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The `recommend` object of a sweep record.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("slo_p99_ns".to_string(), Json::from(self.slo_p99_ns)),
            (
                "budget_replica_seconds".to_string(),
                Json::from(self.budget_replica_seconds),
            ),
            ("feasible".to_string(), Json::from(self.feasible)),
            ("scenario".to_string(), Json::from(self.scenario.as_str())),
        ];
        fields.extend(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v))),
        );
        Json::Obj(fields)
    }

    /// Parses the `recommend` object of a sweep record.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let mut out = SweepRecommendation {
            slo_p99_ns: v
                .get("slo_p99_ns")
                .and_then(Json::as_f64)
                .ok_or("sweep recommend: missing slo_p99_ns")?,
            budget_replica_seconds: v
                .get("budget_replica_seconds")
                .and_then(Json::as_f64)
                .ok_or("sweep recommend: missing budget_replica_seconds")?,
            feasible: v
                .get("feasible")
                .and_then(Json::as_bool)
                .ok_or("sweep recommend: missing feasible")?,
            scenario: v
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("sweep recommend: missing scenario")?
                .to_string(),
            metrics: Vec::new(),
        };
        for (k, field) in v.as_obj().ok_or("sweep recommend is not an object")? {
            if let (false, Json::Num(x)) = (
                matches!(k.as_str(), "slo_p99_ns" | "budget_replica_seconds"),
                field,
            ) {
                out.metrics.push((k.clone(), *x));
            }
        }
        Ok(out)
    }
}

/// Resolves the recommendation for a computed frontier: among the
/// frontier rows with `p99_ns <= slo_p99_ns` (and
/// `replica_seconds <= budget_replica_seconds` when the budget is
/// nonzero), the one with minimum `replica_seconds` — first in table
/// order on ties, so the answer is deterministic.
pub fn recommend(
    table: &[SweepRowRecord],
    frontier: &[usize],
    slo_p99_ns: f64,
    budget_replica_seconds: f64,
) -> SweepRecommendation {
    let mut best: Option<&SweepRowRecord> = None;
    for &i in frontier {
        let row = &table[i];
        let (Some(p99), Some(cost)) = (row.metric("p99_ns"), row.metric("replica_seconds")) else {
            continue;
        };
        if p99 > slo_p99_ns {
            continue;
        }
        if budget_replica_seconds > 0.0 && cost > budget_replica_seconds {
            continue;
        }
        let cheaper = best
            .and_then(|b| b.metric("replica_seconds"))
            .is_none_or(|b_cost| cost < b_cost);
        if cheaper {
            best = Some(row);
        }
    }
    SweepRecommendation {
        slo_p99_ns,
        budget_replica_seconds,
        feasible: best.is_some(),
        scenario: best.map(|r| r.scenario.clone()).unwrap_or_default(),
        metrics: best.map(|r| r.metrics.clone()).unwrap_or_default(),
    }
}

/// One scenario-space sweep: the swept axes, the full results table,
/// the Pareto frontier over [`SWEEP_OBJECTIVES`], and (when an SLO was
/// requested) the resolved recommendation. The `sweep` record family
/// of `gdr-bench/v1` — reported, never gated: the table's shape is
/// whatever the user swept, so there is no stable baseline to compare
/// against (the canonical `serve` family carries the gated scenarios).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Sweep label (`"default"`, or a user-chosen name).
    pub name: String,
    /// The swept axes as `(axis, comma-joined values)` pairs, in
    /// expansion order — the sweep's self-description.
    pub axes: Vec<(String, String)>,
    /// Requests per scenario.
    pub requests: u64,
    /// The backend every replica ran.
    pub platform: String,
    /// One row per expanded scenario, in expansion order.
    pub table: Vec<SweepRowRecord>,
    /// Scenario labels of the Pareto frontier, in table order.
    pub frontier: Vec<String>,
    /// The SLO resolution, when `--slo-p99` was given.
    pub recommend: Option<SweepRecommendation>,
}

impl SweepRecord {
    /// The sweep object of the `sweep` array in `gdr-bench/v1`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            (
                "axes".to_string(),
                Json::arr(self.axes.iter().map(|(axis, values)| {
                    Json::obj([
                        ("axis", Json::from(axis.as_str())),
                        ("values", Json::from(values.as_str())),
                    ])
                })),
            ),
            ("requests".to_string(), Json::from(self.requests)),
            ("platform".to_string(), Json::from(self.platform.as_str())),
            (
                "table".to_string(),
                Json::arr(self.table.iter().map(SweepRowRecord::to_json)),
            ),
            (
                "frontier".to_string(),
                Json::arr(self.frontier.iter().map(|s| Json::from(s.as_str()))),
            ),
        ];
        if let Some(rec) = &self.recommend {
            fields.push(("recommend".to_string(), rec.to_json()));
        }
        Json::Obj(fields)
    }

    /// Parses one sweep object of the `sweep` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let string = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("sweep record: missing string field {key:?}"))
        };
        let mut axes = Vec::new();
        for a in v
            .get("axes")
            .and_then(Json::as_arr)
            .ok_or("sweep record: missing axes")?
        {
            let field = |key: &str| -> Result<String, String> {
                a.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("sweep axis: missing {key:?}"))
            };
            axes.push((field("axis")?, field("values")?));
        }
        let table = v
            .get("table")
            .and_then(Json::as_arr)
            .ok_or("sweep record: missing table")?
            .iter()
            .map(SweepRowRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let frontier = v
            .get("frontier")
            .and_then(Json::as_arr)
            .ok_or("sweep record: missing frontier")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or("non-string frontier label")
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepRecord {
            name: string("name")?,
            axes,
            requests: v
                .get("requests")
                .and_then(Json::as_f64)
                .ok_or("sweep record: missing requests")? as u64,
            platform: string("platform")?,
            table,
            frontier,
            // `recommend` is present only when an SLO was requested.
            recommend: match v.get("recommend") {
                None => None,
                Some(r) => Some(SweepRecommendation::from_json(r)?),
            },
        })
    }
}

/// The latency-attribution stage keys of the `breakdown` record
/// family, in pipeline order. Per completed request the five
/// components sum *exactly* to end-to-end latency:
///
/// * `queue_wait_ns` — sealed batch waiting for (or queued at) a
///   replica, stall episodes excluded;
/// * `batch_form_ns` — request arrival to batch seal;
/// * `bind_ns` — the shard-miss cold-bind penalty, when paid;
/// * `service_ns` — pure batch execution (slowdown-stretched);
/// * `stall_ns` — parked/orphaned time with no live replica (or no
///   primary) to run on.
pub const BREAKDOWN_STAGE_KEYS: &[&str] = &[
    "queue_wait_ns",
    "batch_form_ns",
    "bind_ns",
    "service_ns",
    "stall_ns",
];

/// One stage's aggregate within a [`BreakdownRecord`]: the stage key
/// (one of [`BREAKDOWN_STAGE_KEYS`]) and its mean/p50/p99 over the
/// scenario's completed requests, virtual ns.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownStage {
    /// Stage key, one of [`BREAKDOWN_STAGE_KEYS`].
    pub stage: String,
    /// Mean over completed requests, ns.
    pub mean_ns: f64,
    /// Median over completed requests, ns.
    pub p50_ns: f64,
    /// 99th percentile over completed requests, ns.
    pub p99_ns: f64,
}

impl BreakdownStage {
    /// The stage object of a breakdown record's `stages` array.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::from(self.stage.as_str())),
            ("mean_ns", Json::from(self.mean_ns)),
            ("p50_ns", Json::from(self.p50_ns)),
            ("p99_ns", Json::from(self.p99_ns)),
        ])
    }

    /// Parses one stage object of a breakdown record's `stages` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("breakdown stage: missing numeric field {key:?}"))
        };
        Ok(BreakdownStage {
            stage: v
                .get("stage")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("breakdown stage: missing stage")?,
            mean_ns: num("mean_ns")?,
            p50_ns: num("p50_ns")?,
            p99_ns: num("p99_ns")?,
        })
    }
}

/// One scenario's latency attribution: where the completed requests'
/// nanoseconds went, stage by stage ([`BREAKDOWN_STAGE_KEYS`]). The
/// `breakdown` record family of `gdr-bench/v1` — reported, never
/// gated: it decomposes the already-gated `serve` latencies rather
/// than adding an independent surface, and per-stage means sum to
/// `mean_latency_ns` exactly (the p50/p99 of different stages need
/// not, since each stage's tail is its own distribution).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRecord {
    /// Scenario label, matching the `serve` record it decomposes.
    pub scenario: String,
    /// Traffic seed of the run.
    pub seed: u64,
    /// Completed requests the attribution covers.
    pub requests: u64,
    /// Mean end-to-end latency over those requests, ns — the sum of
    /// the per-stage means.
    pub mean_latency_ns: f64,
    /// One aggregate per stage, in [`BREAKDOWN_STAGE_KEYS`] order.
    pub stages: Vec<BreakdownStage>,
}

impl BreakdownRecord {
    /// Looks up a stage by key (`"queue_wait_ns"`, …).
    pub fn stage(&self, key: &str) -> Option<&BreakdownStage> {
        self.stages.iter().find(|s| s.stage == key)
    }

    /// The breakdown object of the `breakdown` array in `gdr-bench/v1`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario.as_str())),
            ("seed", Json::from(self.seed)),
            ("requests", Json::from(self.requests)),
            ("mean_latency_ns", Json::from(self.mean_latency_ns)),
            (
                "stages",
                Json::arr(self.stages.iter().map(BreakdownStage::to_json)),
            ),
        ])
    }

    /// Parses one breakdown object of the `breakdown` array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("breakdown record: missing numeric field {key:?}"))
        };
        Ok(BreakdownRecord {
            scenario: v
                .get("scenario")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("breakdown record: missing scenario")?,
            seed: num("seed")? as u64,
            requests: num("requests")? as u64,
            mean_latency_ns: num("mean_latency_ns")?,
            stages: v
                .get("stages")
                .and_then(Json::as_arr)
                .ok_or("breakdown record: missing stages")?
                .iter()
                .map(BreakdownStage::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// One platform's record for one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Platform label ([`Platform::name`]).
    pub platform: String,
    /// Stable-ordered numeric metrics: the [`gdr_accel::report::ExecReport`]
    /// flat metrics followed by the platform's extras under an `extra.`
    /// prefix.
    pub metrics: Vec<(String, f64)>,
    /// NA-stage buffer/cache hit rate, when the platform models one.
    pub na_hit_rate: Option<f64>,
    /// Speedup against the platform list's first entry on the same cell.
    pub speedup_vs_baseline: f64,
}

impl RunRecord {
    /// Looks up a metric by key (`"time_ns"`, `"extra.cycles"`, …).
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One (model, dataset) cell: every platform's record plus harness
/// wall-clock for the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Model label (`"RGCN"`, …).
    pub model: String,
    /// Dataset label (`"ACM"`, …).
    pub dataset: String,
    /// Harness wall-clock spent running this cell, seconds.
    pub wall_clock_s: f64,
    /// One record per platform, in platform-list order.
    pub runs: Vec<RunRecord>,
}

impl PointRecord {
    /// Cell label as used in the figures (`"RGCN/ACM"`).
    pub fn label(&self) -> String {
        format!("{}/{}", self.model, self.dataset)
    }
}

/// A full evaluation pass of a platform list over the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Dataset generation seed.
    pub seed: u64,
    /// Dataset scale (1.0 = Table 2 sizes).
    pub scale: f64,
    /// Platform labels, in execution order (first = speedup baseline).
    pub platforms: Vec<String>,
    /// One record per grid cell, models outer, datasets inner.
    pub points: Vec<PointRecord>,
    /// Total harness wall-clock, seconds. Zero for serve-only reports,
    /// which must be byte-for-byte reproducible.
    pub wall_clock_s: f64,
    /// Serving-scenario records (`gdr-serve`), empty for grid-only runs.
    pub serve: Vec<ServeScenarioRecord>,
    /// Host wall-clock throughput records ([`collect_host_records`]).
    /// Reported, never gated; empty for serve-only reports, whose bytes
    /// must be deterministic.
    pub host: Vec<HostRecord>,
    /// Scenario-space sweep records (`gdr-bench sweep`). Reported,
    /// never gated; like serve records they carry no wall clock, so
    /// sweep-only reports are byte-for-byte reproducible.
    pub sweep: Vec<SweepRecord>,
    /// Per-scenario latency-attribution records built from serving
    /// traces ([`BreakdownRecord`]). Reported, never gated; fully
    /// virtual-time, so traced reports stay byte-for-byte
    /// reproducible.
    pub breakdown: Vec<BreakdownRecord>,
}

impl BenchReport {
    /// Runs every (model, dataset) cell of the grid on `platforms` and
    /// collects the report. The platform list is borrowed and reused
    /// across all cells; its first entry is the speedup baseline.
    ///
    /// # Errors
    ///
    /// Propagates the first platform error. The paper platforms cannot
    /// fail on grid-generated inputs; user-supplied [`Platform`]
    /// implementations may.
    pub fn collect(platforms: &[&dyn Platform], cfg: &ExperimentConfig) -> GdrResult<Self> {
        let t0 = Instant::now();
        let mut points = Vec::with_capacity(ModelKind::ALL.len() * Dataset::ALL.len());
        for model in ModelKind::ALL {
            for dataset in Dataset::ALL {
                let cell_t0 = Instant::now();
                let (workload, graphs) = cell_inputs(model, dataset, cfg);
                let runs = run_platforms(platforms, &workload, &graphs)?;
                let baseline_ns = runs.first().map(|r| r.report.time_ns).unwrap_or(0.0);
                let records = runs
                    .iter()
                    .map(|run| {
                        let mut metrics: Vec<(String, f64)> = run
                            .report
                            .flat_metrics()
                            .into_iter()
                            .map(|(k, v)| (k.to_string(), v))
                            .collect();
                        metrics.extend(run.extra.iter().map(|(k, v)| (format!("extra.{k}"), *v)));
                        RunRecord {
                            platform: run.report.platform.clone(),
                            metrics,
                            na_hit_rate: run.report.na_hit_rate,
                            speedup_vs_baseline: if run.report.time_ns > 0.0 {
                                baseline_ns / run.report.time_ns
                            } else {
                                0.0
                            },
                        }
                    })
                    .collect();
                points.push(PointRecord {
                    model: model.name().to_string(),
                    dataset: dataset.name().to_string(),
                    wall_clock_s: cell_t0.elapsed().as_secs_f64(),
                    runs: records,
                });
            }
        }
        Ok(BenchReport {
            seed: cfg.seed,
            scale: cfg.scale,
            platforms: platforms.iter().map(|p| p.name().to_string()).collect(),
            points,
            wall_clock_s: t0.elapsed().as_secs_f64(),
            serve: Vec::new(),
            host: Vec::new(),
            sweep: Vec::new(),
            breakdown: Vec::new(),
        })
    }

    /// Per-platform geometric-mean speedup over the baseline platform,
    /// in platform order.
    pub fn geomean_speedups(&self) -> Vec<(String, f64)> {
        self.platforms
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let ratios: Vec<f64> = self
                    .points
                    .iter()
                    .filter_map(|p| p.runs.get(i))
                    .map(|r| r.speedup_vs_baseline)
                    .collect();
                (name.clone(), geomean(&ratios))
            })
            .collect()
    }

    /// The `gdr-bench/v1` JSON document. Key order is fixed by
    /// construction and covered by a golden-file test — treat any
    /// ordering change as a schema version bump.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(SCHEMA)),
            (
                "config",
                Json::obj([
                    ("seed", Json::from(self.seed)),
                    ("scale", Json::from(self.scale)),
                ]),
            ),
            (
                "platforms",
                Json::arr(self.platforms.iter().map(|p| Json::from(p.as_str()))),
            ),
            ("wall_clock_s", Json::from(self.wall_clock_s)),
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("model", Json::from(p.model.as_str())),
                        ("dataset", Json::from(p.dataset.as_str())),
                        ("wall_clock_s", Json::from(p.wall_clock_s)),
                        (
                            "runs",
                            Json::arr(p.runs.iter().map(|r| {
                                let mut fields =
                                    vec![("platform".to_string(), Json::from(r.platform.as_str()))];
                                let mut extra: Vec<(String, Json)> = Vec::new();
                                for (k, v) in &r.metrics {
                                    match k.strip_prefix("extra.") {
                                        Some(name) => {
                                            extra.push((name.to_string(), Json::from(*v)))
                                        }
                                        None => fields.push((k.clone(), Json::from(*v))),
                                    }
                                }
                                fields.push(("na_hit_rate".into(), Json::from(r.na_hit_rate)));
                                fields.push((
                                    "speedup_vs_baseline".into(),
                                    Json::from(r.speedup_vs_baseline),
                                ));
                                fields.push(("extra".into(), Json::Obj(extra)));
                                Json::Obj(fields)
                            })),
                        ),
                    ])
                })),
            ),
            (
                "serve",
                Json::arr(self.serve.iter().map(ServeScenarioRecord::to_json)),
            ),
            ("host", Json::arr(self.host.iter().map(HostRecord::to_json))),
            (
                "sweep",
                Json::arr(self.sweep.iter().map(SweepRecord::to_json)),
            ),
            (
                "breakdown",
                Json::arr(self.breakdown.iter().map(BreakdownRecord::to_json)),
            ),
        ])
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    /// Unknown numeric fields are kept (forward compatibility within the
    /// same schema id); an unknown `schema` value is rejected.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// [`BenchReport::parse`] over an already-parsed value.
    ///
    /// # Errors
    ///
    /// See [`BenchReport::parse`].
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let config = v.get("config").ok_or("missing config")?;
        let num = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let string = |obj: &Json, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let platforms = v
            .get("platforms")
            .and_then(Json::as_arr)
            .ok_or("missing platforms")?
            .iter()
            .map(|p| p.as_str().map(str::to_string).ok_or("non-string platform"))
            .collect::<Result<Vec<_>, _>>()?;
        let mut points = Vec::new();
        for p in v
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing points")?
        {
            let mut runs = Vec::new();
            for r in p.get("runs").and_then(Json::as_arr).ok_or("missing runs")? {
                let mut metrics = Vec::new();
                for (k, field) in r.as_obj().ok_or("run is not an object")? {
                    match (k.as_str(), field) {
                        ("platform" | "na_hit_rate" | "speedup_vs_baseline", _) => {}
                        ("extra", Json::Obj(pairs)) => {
                            for (ek, ev) in pairs {
                                let x = ev.as_f64().ok_or("non-numeric extra metric")?;
                                metrics.push((format!("extra.{ek}"), x));
                            }
                        }
                        (_, Json::Num(x)) => metrics.push((k.clone(), *x)),
                        _ => return Err(format!("unexpected run field {k:?}")),
                    }
                }
                runs.push(RunRecord {
                    platform: string(r, "platform")?,
                    metrics,
                    na_hit_rate: r.get("na_hit_rate").and_then(Json::as_f64),
                    speedup_vs_baseline: num(r, "speedup_vs_baseline")?,
                });
            }
            points.push(PointRecord {
                model: string(p, "model")?,
                dataset: string(p, "dataset")?,
                wall_clock_s: num(p, "wall_clock_s")?,
                runs,
            });
        }
        // `serve` was added within the same schema id: reports written
        // before it exists parse with an empty record family.
        let serve = match v.get("serve") {
            None => Vec::new(),
            Some(s) => s
                .as_arr()
                .ok_or("serve is not an array")?
                .iter()
                .map(ServeScenarioRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // `host` likewise: reports written before the host family exist
        // parse with no host records.
        let host = match v.get("host") {
            None => Vec::new(),
            Some(h) => h
                .as_arr()
                .ok_or("host is not an array")?
                .iter()
                .map(HostRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // `sweep` likewise: reports written before the sweep family
        // exist parse with no sweep records.
        let sweep = match v.get("sweep") {
            None => Vec::new(),
            Some(s) => s
                .as_arr()
                .ok_or("sweep is not an array")?
                .iter()
                .map(SweepRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // `breakdown` likewise: reports written before the breakdown
        // family exist parse with no breakdown records.
        let breakdown = match v.get("breakdown") {
            None => Vec::new(),
            Some(b) => b
                .as_arr()
                .ok_or("breakdown is not an array")?
                .iter()
                .map(BreakdownRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(BenchReport {
            seed: num(config, "seed")? as u64,
            scale: num(config, "scale")?,
            platforms,
            points,
            wall_clock_s: num(v, "wall_clock_s")?,
            serve,
            host,
            sweep,
            breakdown,
        })
    }

    /// Markdown rendering: per-cell latency and speedup table plus a
    /// DRAM traffic table with geomean rows (when the grid ran), a
    /// serving table (when serve scenarios ran), and a host throughput
    /// table (when host records were collected).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.points.is_empty() {
            out.push_str(&self.grid_markdown());
        }
        if !self.serve.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&self.serve_markdown());
        }
        if !self.breakdown.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&self.breakdown_markdown());
        }
        if !self.host.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&self.host_markdown());
        }
        if !self.sweep.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&self.sweep_markdown());
        }
        out
    }

    fn grid_markdown(&self) -> String {
        let mut headers: Vec<String> = vec!["workload".into()];
        for p in &self.platforms {
            headers.push(format!("{p} ms"));
            headers.push(format!("{p} ×"));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for point in &self.points {
            let mut row = vec![point.label()];
            for run in &point.runs {
                row.push(f2(run.metric("time_ns").unwrap_or(0.0) / 1e6));
                row.push(f2(run.speedup_vs_baseline));
            }
            rows.push(row);
        }
        let mut geo_row = vec!["GEOMEAN".to_string()];
        for (_, g) in self.geomean_speedups() {
            geo_row.push(String::new());
            geo_row.push(f2(g));
        }
        rows.push(geo_row);
        let mut out = format!(
            "### Latency and speedup vs {} (seed {}, scale {})\n\n{}",
            self.platforms.first().map(String::as_str).unwrap_or("?"),
            self.seed,
            self.scale,
            table(&header_refs, &rows),
        );

        let mut dram_headers: Vec<String> = vec!["workload".into()];
        for p in &self.platforms {
            dram_headers.push(format!("{p} MiB"));
        }
        let dram_header_refs: Vec<&str> = dram_headers.iter().map(String::as_str).collect();
        let dram_rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|point| {
                let mut row = vec![point.label()];
                for run in &point.runs {
                    row.push(f2(
                        run.metric("dram_bytes").unwrap_or(0.0) / (1 << 20) as f64
                    ));
                }
                row
            })
            .collect();
        out.push_str("\n### DRAM traffic\n\n");
        out.push_str(&table(&dram_header_refs, &dram_rows));
        out
    }

    fn serve_markdown(&self) -> String {
        let headers = [
            "scenario",
            "platform",
            "req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "batch ×",
            "queue",
            "cache %",
            "misses",
            "replicas",
            "avail %",
            "failover ms",
        ];
        let rows: Vec<Vec<String>> = self
            .serve
            .iter()
            .flat_map(|s| {
                s.runs.iter().map(|r| {
                    let ms = |key: &str| f2(r.metric(key).unwrap_or(0.0) / 1e6);
                    vec![
                        s.scenario.clone(),
                        r.platform.clone(),
                        f2(r.metric("throughput_rps").unwrap_or(0.0)),
                        ms("p50_ns"),
                        ms("p95_ns"),
                        ms("p99_ns"),
                        f2(r.metric("mean_batch_size").unwrap_or(0.0)),
                        f2(r.metric("mean_queue_depth").unwrap_or(0.0)),
                        f2(r.metric("cache_hit_rate").unwrap_or(0.0) * 100.0),
                        f2(r.metric("shard_miss_count").unwrap_or(0.0)),
                        f2(r.metric("replicas_max").unwrap_or(0.0)),
                        // Pre-fault records lack the fault metrics: show
                        // a fully available, failover-free pool.
                        f2(r.metric("availability").unwrap_or(1.0) * 100.0),
                        f2(r.metric("failover_ns").unwrap_or(0.0) / 1e6),
                    ]
                })
            })
            .collect();
        format!(
            "### Serving (seed {}, scale {})\n\n{}",
            self.seed,
            self.scale,
            table(&headers, &rows)
        )
    }

    fn breakdown_markdown(&self) -> String {
        let headers = ["scenario", "stage", "mean ms", "p50 ms", "p99 ms"];
        let rows: Vec<Vec<String>> = self
            .breakdown
            .iter()
            .flat_map(|b| {
                b.stages.iter().map(|s| {
                    vec![
                        b.scenario.clone(),
                        s.stage.clone(),
                        f2(s.mean_ns / 1e6),
                        f2(s.p50_ns / 1e6),
                        f2(s.p99_ns / 1e6),
                    ]
                })
            })
            .collect();
        format!(
            "### Latency attribution (virtual time, not gated; seed {}, scale {})\n\n{}",
            self.seed,
            self.scale,
            table(&headers, &rows)
        )
    }

    fn sweep_markdown(&self) -> String {
        let mut out = String::new();
        for s in &self.sweep {
            let headers = [
                "frontier scenario",
                "p99 ms",
                "req/s",
                "replica s",
                "DRAM MiB",
            ];
            let rows: Vec<Vec<String>> = s
                .table
                .iter()
                .filter(|row| s.frontier.contains(&row.scenario))
                .map(|row| {
                    vec![
                        row.scenario.clone(),
                        f2(row.metric("p99_ns").unwrap_or(0.0) / 1e6),
                        f2(row.metric("throughput_rps").unwrap_or(0.0)),
                        f2(row.metric("replica_seconds").unwrap_or(0.0)),
                        f2(row.metric("dram_bytes").unwrap_or(0.0) / (1 << 20) as f64),
                    ]
                })
                .collect();
            out.push_str(&format!(
                "### Sweep {} — {} scenarios, {} on the Pareto frontier (seed {}, scale {})\n\n{}",
                s.name,
                s.table.len(),
                s.frontier.len(),
                self.seed,
                self.scale,
                table(&headers, &rows),
            ));
            if let Some(rec) = &s.recommend {
                let budget = if rec.budget_replica_seconds > 0.0 {
                    format!(" within {} replica-seconds", rec.budget_replica_seconds)
                } else {
                    String::new()
                };
                if rec.feasible {
                    out.push_str(&format!(
                        "\nrecommended for p99 <= {} ms{budget}: {} \
                         (p99 {} ms, {} req/s, {} replica-seconds)\n",
                        f2(rec.slo_p99_ns / 1e6),
                        rec.scenario,
                        f2(rec.metric("p99_ns").unwrap_or(0.0) / 1e6),
                        f2(rec.metric("throughput_rps").unwrap_or(0.0)),
                        f2(rec.metric("replica_seconds").unwrap_or(0.0)),
                    ));
                } else {
                    out.push_str(&format!(
                        "\nno frontier config meets p99 <= {} ms{budget}\n",
                        f2(rec.slo_p99_ns / 1e6),
                    ));
                }
            }
        }
        out
    }

    fn host_markdown(&self) -> String {
        let headers = ["measurement", "graphs/s", "ns/graph", "wall s"];
        let rows: Vec<Vec<String>> = self
            .host
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    f2(r.metric("graphs_per_sec").unwrap_or(0.0)),
                    f2(r.metric("ns_per_graph").unwrap_or(0.0)),
                    f2(r.metric("wall_clock_s").unwrap_or(0.0)),
                ]
            })
            .collect();
        format!(
            "### Host restructuring throughput (wall clock, not gated; scale {})\n\n{}",
            self.scale,
            table(&headers, &rows)
        )
    }
}

/// Measures host-side restructuring throughput: for every Table 2
/// dataset, times `passes` full frontend passes over its semantic
/// graphs under three execution strategies —
///
/// * `fresh` — a transient restructuring workspace per graph (the
///   allocating baseline every pre-workspace caller paid),
/// * `reused` — one [`Workspace`](gdr_frontend::Workspace) carried
///   across all graphs and passes (the `Session` steady state),
/// * `parallel` —
///   [`Session::par_process`](gdr_frontend::session::Session::par_process)
///   with one workspace per lane,
///
/// and emits one [`HostRecord`] per (dataset, strategy) with
/// `graphs_per_sec` and `ns_per_graph`. This is **wall clock**: values
/// differ across machines and runs, which is exactly why the records
/// are reported but never gated ([`compare`] ignores the `host`
/// family). `passes` is clamped to at least 1.
pub fn collect_host_records(cfg: &ExperimentConfig, passes: usize) -> Vec<HostRecord> {
    collect_host_records_traced(cfg, passes, None)
}

/// Trace track (`pid`) carrying host-side wall-clock sections —
/// distinct from the serving trace's virtual-time process so the two
/// clock domains never share a lane.
pub const HOST_TRACE_PID: u64 = 2;

/// [`collect_host_records`] plus an optional [`ChromeTrace`] hook:
/// when a trace is given, every timed section lands on it as a
/// duration event — one thread track per strategy (`fresh`/`reused`/
/// `parallel`), one span per dataset, timestamped as wall-clock
/// offsets from the collection's start. Unlike serving traces these
/// spans are **not** byte-reproducible (they measure the host), which
/// is why they live on their own [`HOST_TRACE_PID`] process track.
pub fn collect_host_records_traced(
    cfg: &ExperimentConfig,
    passes: usize,
    mut trace: Option<&mut ChromeTrace>,
) -> Vec<HostRecord> {
    use gdr_frontend::config::FrontendConfig;
    use gdr_frontend::pipeline::FrontendPipeline;
    use gdr_frontend::session::Session;
    use gdr_frontend::Workspace;

    const STRATEGIES: [&str; 3] = ["fresh", "reused", "parallel"];
    if let Some(t) = trace.as_deref_mut() {
        t.process_name(HOST_TRACE_PID, "gdr-bench host");
        for (i, strategy) in STRATEGIES.iter().enumerate() {
            t.thread_name(HOST_TRACE_PID, i as u64 + 1, strategy);
        }
    }
    let origin = Instant::now();
    let passes = passes.max(1);
    let mut out = Vec::new();
    for dataset in Dataset::ALL {
        let graphs = dataset
            .build_scaled(cfg.seed, cfg.scale)
            .all_semantic_graphs();
        let pipeline = FrontendPipeline::new(FrontendConfig::default());
        let session = Session::with_pipeline(pipeline.clone(), &graphs);
        let total_graphs = graphs.len() * passes;
        let mut record = |strategy: &str, wall_s: f64| {
            let wall_s = wall_s.max(f64::MIN_POSITIVE);
            let value = |key: &str| -> f64 {
                match key {
                    "graphs" => graphs.len() as f64,
                    "passes" => passes as f64,
                    "wall_clock_s" => wall_s,
                    "graphs_per_sec" => total_graphs as f64 / wall_s,
                    "ns_per_graph" => wall_s * 1e9 / (total_graphs as f64).max(1.0),
                    other => unreachable!("unknown host metric key {other}"),
                }
            };
            out.push(HostRecord {
                name: format!("session/{}/{}", dataset.name(), strategy),
                metrics: HOST_METRIC_KEYS
                    .iter()
                    .map(|&k| (k.to_string(), value(k)))
                    .collect(),
            });
        };
        let span = |trace: &mut Option<&mut ChromeTrace>,
                    strategy_idx: usize,
                    started_ns: u64,
                    elapsed: std::time::Duration| {
            if let Some(t) = trace.as_deref_mut() {
                t.duration(
                    HOST_TRACE_PID,
                    strategy_idx as u64 + 1,
                    started_ns,
                    (elapsed.as_nanos() as u64).max(1),
                    &format!("session/{}", dataset.name()),
                    "host",
                    vec![],
                );
            }
        };

        let started_ns = origin.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        for _ in 0..passes {
            for g in &graphs {
                std::hint::black_box(pipeline.process(g));
            }
        }
        span(&mut trace, 0, started_ns, t0.elapsed());
        record("fresh", t0.elapsed().as_secs_f64());

        let mut ws = Workspace::new();
        let started_ns = origin.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        for _ in 0..passes {
            std::hint::black_box(session.process_with(&mut ws));
        }
        span(&mut trace, 1, started_ns, t0.elapsed());
        record("reused", t0.elapsed().as_secs_f64());

        let started_ns = origin.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        for _ in 0..passes {
            std::hint::black_box(session.par_process());
        }
        span(&mut trace, 2, started_ns, t0.elapsed());
        record("parallel", t0.elapsed().as_secs_f64());
    }
    out
}

/// Every table and figure of the paper's evaluation, regenerated from
/// one grid pass over [`crate::grid::paper_platforms`] and rendered as
/// one markdown document ([`PaperReport::to_markdown`], the source of
/// `EXPERIMENTS.md`) or one JSON document ([`PaperReport::to_json`]).
///
/// This is the paper-shaped sibling of the platform-generic
/// [`BenchReport`]: it exists because Figs. 2 and 7–10 are projections
/// specific to the paper's four platforms, while [`BenchReport`] carries
/// raw per-record metrics for any platform list.
#[derive(Debug, Clone)]
pub struct PaperReport {
    /// Grid configuration the figures were generated at.
    pub config: ExperimentConfig,
    /// Table 2 (dataset statistics), markdown.
    pub table2_md: String,
    /// Table 3 (platform configurations), markdown.
    pub table3_md: String,
    /// §3 motivation: per-dataset T4 L2 hit % over RGCN NA gathers.
    pub motivation: Vec<(Dataset, f64)>,
    /// Fig. 2: replacement-times histograms.
    pub fig2: Fig2,
    /// Fig. 7: speedups over T4.
    pub fig7: Fig7,
    /// Fig. 8: DRAM access normalized to T4.
    pub fig8: Fig8,
    /// Fig. 9: bandwidth utilization.
    pub fig9: Fig9,
    /// Fig. 10: area and power.
    pub fig10: Fig10,
    /// Design-choice ablations A1–A3.
    pub ablations: AblationReport,
    /// Wall-clock spent running the grid, seconds.
    pub grid_wall_clock_s: f64,
}

impl PaperReport {
    /// Regenerates every figure and table at `cfg`, running the grid
    /// once. The ablations run on DBLP's largest semantic graph with the
    /// HiHGNN NA-window capacity, as `run_experiments` always has.
    pub fn collect(cfg: &ExperimentConfig) -> Self {
        let t0 = Instant::now();
        let grid = run_grid(cfg);
        let grid_wall_clock_s = t0.elapsed().as_secs_f64();
        let cap = gdr_accel::hihgnn::HiHgnnConfig::default().na_window_features();
        Self {
            config: *cfg,
            table2_md: table2(cfg),
            table3_md: table3(),
            motivation: motivation_l2(&grid),
            fig2: fig2(&grid),
            fig7: fig7(&grid),
            fig8: fig8(&grid),
            fig9: fig9(&grid),
            fig10: fig10(),
            ablations: AblationReport::collect(cfg, Dataset::Dblp, cap),
            grid_wall_clock_s,
        }
    }

    /// The full experiment document (the `run_experiments` output).
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# GDR-HGNN experiment results (scale {})\n\n",
            self.config.scale
        );
        out.push_str("## Table 2: datasets\n\n");
        out.push_str(&self.table2_md);
        out.push_str("\n## Table 3: platforms\n\n");
        out.push_str(&self.table3_md);
        out.push_str("\n## Motivation (§3): T4 L2 hit ratio, RGCN NA stage\n\n");
        out.push_str("paper: IMDB 30.1%, DBLP 17.5%\n\n");
        for (d, pct) in &self.motivation {
            out.push_str(&format!("- {d}: {pct:.1}%\n"));
        }
        out.push_str("\n## Fig. 2: feature replacement times on HiHGNN (RGCN)\n\n");
        out.push_str(&self.fig2.to_markdown());
        out.push_str("\n## Fig. 7: speedup over T4\n\n");
        out.push_str(&self.fig7.to_markdown());
        let (vs_t4, vs_a100, vs_hihgnn) = self.fig7.headline();
        out.push_str(&format!(
            "\nheadline: GDR+HiHGNN = {vs_t4:.1}x vs T4 (paper 68.8x), {vs_a100:.1}x vs A100 (paper 14.6x), {vs_hihgnn:.2}x vs HiHGNN (paper 1.78x)\n"
        ));
        out.push_str("\n## Fig. 8: DRAM access normalized to T4 (%)\n\n");
        out.push_str(&self.fig8.to_markdown());
        let (g_t4, g_a100, g_hihgnn) = self.fig8.headline();
        out.push_str(&format!(
            "\nheadline: GDR+HiHGNN accesses {g_t4:.1}% of T4 (paper 4.8%), {g_a100:.1}% of A100 (paper 8.7%), {g_hihgnn:.1}% of HiHGNN (paper 57.1%)\n"
        ));
        out.push_str("\n## Fig. 9: DRAM bandwidth utilization (%)\n\n");
        out.push_str(&self.fig9.to_markdown());
        let (u_t4, u_a100) = self.fig9.headline();
        out.push_str(&format!(
            "\nheadline: GDR+HiHGNN utilization {u_t4:.2}x of T4 (paper 2.58x), {u_a100:.2}x of A100 (paper 6.35x)\n"
        ));
        out.push_str("\n## Fig. 10: area and power\n\n");
        out.push_str(&self.fig10.to_markdown());
        out.push_str(&format!(
            "\nGDR area share {:.2}% (paper 2.30%), power share {:.2}% (paper 0.46%)\n",
            self.fig10.gdr_area_pct, self.fig10.gdr_power_pct
        ));
        let (af, ab, ao) = self.fig10.gdr_area_breakdown;
        let (pf, pb, po) = self.fig10.gdr_power_breakdown;
        out.push_str(&format!(
            "GDR area breakdown: FIFOs {af:.2}% / buffers {ab:.2}% / others {ao:.2}% (paper 0.87/91.74/7.39)\n"
        ));
        out.push_str(&format!(
            "GDR power breakdown: FIFOs {pf:.2}% / buffers {pb:.2}% / others {po:.2}% (paper 2.17/93.48/4.35)\n"
        ));
        out.push_str("\n## Ablations (ours)\n\n");
        out.push_str(&self.ablations.to_markdown());
        out
    }

    /// One JSON document bundling every figure/table rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("gdr-paper-report/v1")),
            (
                "config",
                Json::obj([
                    ("seed", Json::from(self.config.seed)),
                    ("scale", Json::from(self.config.scale)),
                ]),
            ),
            ("grid_wall_clock_s", Json::from(self.grid_wall_clock_s)),
            ("table2_markdown", Json::from(self.table2_md.as_str())),
            ("table3_markdown", Json::from(self.table3_md.as_str())),
            (
                "motivation_t4_l2_hit_pct",
                Json::obj(
                    self.motivation
                        .iter()
                        .map(|(d, pct)| (d.name().to_string(), Json::from(*pct))),
                ),
            ),
            ("fig2", self.fig2.to_json()),
            ("fig7", self.fig7.to_json()),
            ("fig8", self.fig8.to_json()),
            ("fig9", self.fig9.to_json()),
            ("fig10", self.fig10.to_json()),
            ("ablations", self.ablations.to_json()),
        ])
    }
}

/// One metric's movement between two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Cell label (`"RGCN/ACM"`).
    pub point: String,
    /// Platform label.
    pub platform: String,
    /// Metric key.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl Delta {
    /// Percent change, positive = metric grew (worse, for gated
    /// lower-is-better metrics).
    pub fn change_pct(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current / self.baseline - 1.0) * 100.0
        }
    }
}

/// Outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Regression threshold in percent (e.g. `10.0`).
    pub threshold_pct: f64,
    /// Gated metrics that grew past the threshold.
    pub regressions: Vec<Delta>,
    /// Gated metrics that shrank past the threshold (celebrate, and
    /// refresh the committed baseline so the win is locked in).
    pub improvements: Vec<Delta>,
    /// `(cell, platform)` records present in the baseline but absent
    /// from the current report — a shrunk grid also fails the gate.
    pub missing: Vec<String>,
    /// Set when the two reports were produced from different
    /// `(seed, scale)` configurations and are not comparable.
    pub config_mismatch: Option<String>,
}

impl Comparison {
    /// Whether the gate passes: comparable configs, full coverage, no
    /// gated regression.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty() && self.config_mismatch.is_none()
    }

    /// Human-readable verdict for CI logs.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(m) = &self.config_mismatch {
            out.push_str(&format!("**config mismatch:** {m}\n"));
        }
        for m in &self.missing {
            out.push_str(&format!("**missing from current report:** {m}\n"));
        }
        let describe = |out: &mut String, title: &str, deltas: &[Delta]| {
            if deltas.is_empty() {
                return;
            }
            out.push_str(&format!(
                "\n**{title}** (threshold {}%):\n",
                self.threshold_pct
            ));
            for d in deltas {
                out.push_str(&format!(
                    "- {} on {}: {} {} → {} ({:+.1}%)\n",
                    d.metric,
                    d.point,
                    d.platform,
                    d.baseline,
                    d.current,
                    d.change_pct()
                ));
            }
        };
        describe(&mut out, "regressions", &self.regressions);
        describe(&mut out, "improvements", &self.improvements);
        if self.passed() {
            let serve_gated: Vec<String> = SERVE_GATED_METRICS
                .iter()
                .map(|&(k, higher)| {
                    format!("{k} ({} better)", if higher { "higher" } else { "lower" })
                })
                .collect();
            out.push_str(&format!(
                "perf gate PASSED: no gated metric (grid: {}; serve: {}) moved more than {}% \
                 in the bad direction on all compared records\n",
                GATED_METRICS.join(", "),
                serve_gated.join(", "),
                self.threshold_pct,
            ));
        }
        out
    }
}

/// Compares `current` against `baseline` on [`GATED_METRICS`] (grid
/// records, lower-is-better), [`SERVE_GATED_METRICS`] (serve records,
/// direction per metric), and — when the baseline records them —
/// [`SERVE_FAULT_GATED_METRICS`] and [`SERVE_COST_GATED_METRICS`]
/// (the fault family and the replica-seconds / SLO-violation cost
/// family), flagging any gated metric that moved in the bad direction
/// by more than `threshold_pct` percent.
/// Wall-clock fields and non-gated metrics are never compared — they
/// are either machine-dependent or direction-ambiguous. The `host`,
/// `sweep`, and `breakdown` families are likewise ignored: host
/// records are wall clock, a sweep's table shape is whatever the user
/// swept, and a breakdown only decomposes latencies the `serve` family
/// already gates — so none has an independent stable baseline.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut cmp = Comparison {
        threshold_pct,
        regressions: Vec::new(),
        improvements: Vec::new(),
        missing: Vec::new(),
        config_mismatch: None,
    };
    if baseline.seed != current.seed || baseline.scale != current.scale {
        cmp.config_mismatch = Some(format!(
            "baseline (seed {}, scale {}) vs current (seed {}, scale {})",
            baseline.seed, baseline.scale, current.seed, current.scale
        ));
        return cmp;
    }
    for b_point in &baseline.points {
        let c_point = current
            .points
            .iter()
            .find(|p| p.model == b_point.model && p.dataset == b_point.dataset);
        for b_run in &b_point.runs {
            let c_run = c_point.and_then(|p| p.runs.iter().find(|r| r.platform == b_run.platform));
            let Some(c_run) = c_run else {
                cmp.missing
                    .push(format!("{} on {}", b_point.label(), b_run.platform));
                continue;
            };
            for &metric in GATED_METRICS {
                let (Some(b), Some(c)) = (b_run.metric(metric), c_run.metric(metric)) else {
                    // A gated metric absent on either side must not pass
                    // silently — a vacuous comparison is a broken gate.
                    cmp.missing.push(format!(
                        "{} for {} on {}",
                        metric,
                        b_point.label(),
                        b_run.platform
                    ));
                    continue;
                };
                let delta = Delta {
                    point: b_point.label(),
                    platform: b_run.platform.clone(),
                    metric: metric.to_string(),
                    baseline: b,
                    current: c,
                };
                if c > b * (1.0 + threshold_pct / 100.0) {
                    cmp.regressions.push(delta);
                } else if c < b * (1.0 - threshold_pct / 100.0) {
                    cmp.improvements.push(delta);
                }
            }
        }
    }
    for b_scn in &baseline.serve {
        let c_scn = current.serve.iter().find(|s| s.scenario == b_scn.scenario);
        for b_run in &b_scn.runs {
            let c_run = c_scn.and_then(|s| s.runs.iter().find(|r| r.platform == b_run.platform));
            let Some(c_run) = c_run else {
                cmp.missing
                    .push(format!("serve {} on {}", b_scn.scenario, b_run.platform));
                continue;
            };
            for &(metric, higher_is_better) in SERVE_GATED_METRICS {
                let (Some(b), Some(c)) = (b_run.metric(metric), c_run.metric(metric)) else {
                    cmp.missing.push(format!(
                        "{} for serve {} on {}",
                        metric, b_scn.scenario, b_run.platform
                    ));
                    continue;
                };
                let delta = Delta {
                    point: format!("serve {}", b_scn.scenario),
                    platform: b_run.platform.clone(),
                    metric: metric.to_string(),
                    baseline: b,
                    current: c,
                };
                let (worse, better) = if higher_is_better {
                    (
                        c < b * (1.0 - threshold_pct / 100.0),
                        c > b * (1.0 + threshold_pct / 100.0),
                    )
                } else {
                    (
                        c > b * (1.0 + threshold_pct / 100.0),
                        c < b * (1.0 - threshold_pct / 100.0),
                    )
                };
                if worse {
                    cmp.regressions.push(delta);
                } else if better {
                    cmp.improvements.push(delta);
                }
            }
            let conditional = SERVE_FAULT_GATED_METRICS
                .iter()
                .chain(SERVE_COST_GATED_METRICS);
            for &(metric, higher_is_better) in conditional {
                // Fault and cost metrics gate only once the baseline
                // pins them: older baselines lack the keys entirely,
                // and treating absence as zero would invent
                // regressions.
                let Some(b) = b_run.metric(metric) else {
                    continue;
                };
                let Some(c) = c_run.metric(metric) else {
                    cmp.missing.push(format!(
                        "{} for serve {} on {}",
                        metric, b_scn.scenario, b_run.platform
                    ));
                    continue;
                };
                let delta = Delta {
                    point: format!("serve {}", b_scn.scenario),
                    platform: b_run.platform.clone(),
                    metric: metric.to_string(),
                    baseline: b,
                    current: c,
                };
                let (worse, better) = if higher_is_better {
                    (
                        c < b * (1.0 - threshold_pct / 100.0),
                        c > b * (1.0 + threshold_pct / 100.0),
                    )
                } else {
                    (
                        c > b * (1.0 + threshold_pct / 100.0),
                        c < b * (1.0 - threshold_pct / 100.0),
                    )
                };
                if worse {
                    cmp.regressions.push(delta);
                } else if better {
                    cmp.improvements.push(delta);
                }
            }
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{paper_platforms, platform_refs};

    fn tiny_report() -> BenchReport {
        let platforms = paper_platforms();
        let refs = platform_refs(&platforms);
        BenchReport::collect(
            &refs,
            &ExperimentConfig {
                seed: 11,
                scale: 0.04,
            },
        )
        .unwrap()
    }

    /// Scales a gated metric on every record, simulating a regression or
    /// improvement.
    fn scaled(report: &BenchReport, metric: &str, factor: f64) -> BenchReport {
        let mut out = report.clone();
        for p in &mut out.points {
            for r in &mut p.runs {
                for (k, v) in &mut r.metrics {
                    if k == metric {
                        *v *= factor;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn collect_covers_grid_and_baselines_speedup() {
        let r = tiny_report();
        assert_eq!(r.points.len(), 9);
        assert_eq!(r.platforms, ["T4", "A100", "HiHGNN", "HiHGNN+GDR"]);
        for p in &r.points {
            assert_eq!(p.runs.len(), 4);
            // first platform is its own baseline
            assert!((p.runs[0].speedup_vs_baseline - 1.0).abs() < 1e-12);
            // combined system surfaces frontend session stats
            assert!(p.runs[3].metric("extra.frontend_cycles").unwrap() > 0.0);
            assert!(p.runs[3].metric("extra.cycles").unwrap() > 0.0);
        }
        let geo = r.geomean_speedups();
        assert!((geo[0].1 - 1.0).abs() < 1e-12);
        assert!(geo[2].1 > geo[1].1, "HiHGNN geomean beats A100");
    }

    #[test]
    fn json_round_trip_preserves_records() {
        let r = tiny_report();
        let parsed = BenchReport::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(parsed, r);
        // compact form parses identically
        assert_eq!(BenchReport::parse(&r.to_json().to_compact()).unwrap(), r);
    }

    #[test]
    fn markdown_renders_tables() {
        let r = tiny_report();
        let md = r.to_markdown();
        assert!(md.contains("GEOMEAN"));
        assert!(md.contains("RGCN/ACM"));
        assert!(md.contains("DRAM traffic"));
    }

    #[test]
    fn paper_report_renders_every_section() {
        let r = PaperReport::collect(&ExperimentConfig {
            seed: 7,
            scale: 0.05,
        });
        let md = r.to_markdown();
        for section in [
            "Table 2",
            "Table 3",
            "Motivation",
            "Fig. 2",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "Ablations",
            "headline",
        ] {
            assert!(md.contains(section), "missing section {section}");
        }
        let j = r.to_json();
        assert!(j.get("fig7").is_some() && j.get("ablations").is_some());
        assert_eq!(Json::parse(&j.to_pretty()).unwrap(), j);
    }

    #[test]
    fn comparator_flags_20pct_slowdown_and_passes_5pct() {
        let base = tiny_report();
        let slow = scaled(&base, "time_ns", 1.20);
        let cmp = compare(&base, &slow, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 36, "9 cells × 4 platforms");
        assert!(cmp.regressions.iter().all(|d| d.metric == "time_ns"));
        assert!((cmp.regressions[0].change_pct() - 20.0).abs() < 1e-6);

        let ok = scaled(&base, "time_ns", 1.05);
        assert!(compare(&base, &ok, 10.0).passed());
    }

    #[test]
    fn comparator_reports_improvements_and_missing() {
        let base = tiny_report();
        let fast = scaled(&base, "dram_bytes", 0.5);
        let cmp = compare(&base, &fast, 10.0);
        assert!(cmp.passed(), "improvements alone must not fail the gate");
        assert_eq!(cmp.improvements.len(), 36);

        let mut shrunk = base.clone();
        shrunk.points[0].runs.pop();
        let cmp = compare(&base, &shrunk, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, ["RGCN/ACM on HiHGNN+GDR"]);
        assert!(cmp.to_markdown().contains("missing"));
    }

    #[test]
    fn comparator_fails_when_a_gated_metric_is_absent() {
        // Stripping time_ns from one run must fail the gate, not pass
        // it vacuously.
        let base = tiny_report();
        let mut stripped = base.clone();
        stripped.points[0].runs[0]
            .metrics
            .retain(|(k, _)| k != "time_ns");
        let cmp = compare(&base, &stripped, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, ["time_ns for RGCN/ACM on T4"]);
        // ...in either direction
        assert!(!compare(&stripped, &base, 10.0).passed());
    }

    #[test]
    fn comparator_rejects_mismatched_configs() {
        let base = tiny_report();
        let mut other = base.clone();
        other.scale = 1.0;
        let cmp = compare(&base, &other, 10.0);
        assert!(!cmp.passed());
        assert!(cmp.config_mismatch.is_some());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let r = tiny_report();
        let text = r.to_json().to_compact().replace(SCHEMA, "gdr-bench/v999");
        assert!(BenchReport::parse(&text).is_err());
    }

    /// A synthetic serve scenario with the canonical metric keys.
    fn serve_scenario(name: &str, p99_ns: f64, throughput_rps: f64) -> ServeScenarioRecord {
        serve_scenario_with(
            name,
            &[("p99_ns", p99_ns), ("throughput_rps", throughput_rps)],
        )
    }

    /// A synthetic serve scenario overriding the given metric keys.
    fn serve_scenario_with(name: &str, overrides: &[(&str, f64)]) -> ServeScenarioRecord {
        let metrics = SERVE_METRIC_KEYS
            .iter()
            .map(|&k| {
                let v = overrides
                    .iter()
                    .find(|(ok, _)| *ok == k)
                    .map(|&(_, v)| v)
                    .unwrap_or(64.0);
                (k.to_string(), v)
            })
            .collect();
        ServeScenarioRecord {
            scenario: name.into(),
            arrival: "poisson".into(),
            rate_rps: 1000.0,
            batch: "size-capped:8".into(),
            scheduler: "round-robin".into(),
            replicas: 2,
            shards: 3,
            cache_bytes: 1 << 20,
            autoscale: "queue:32:2:max4".into(),
            faults: "crash:0@80000;control:vr".into(),
            seed: 7,
            requests: 64,
            runs: vec![ServeRunRecord {
                platform: "ALL".into(),
                metrics,
            }],
        }
    }

    #[test]
    fn serve_records_round_trip_and_render() {
        let mut r = tiny_report();
        r.serve = vec![serve_scenario("poisson-hi/immediate", 5.0e6, 900.0)];
        let parsed = BenchReport::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(
            parsed.serve[0].aggregate().unwrap().metric("p99_ns"),
            Some(5.0e6)
        );
        let md = r.to_markdown();
        assert!(md.contains("Serving") && md.contains("poisson-hi/immediate"));
        // a serve-only report renders only the serving table
        let only = BenchReport {
            points: Vec::new(),
            wall_clock_s: 0.0,
            ..r
        };
        let md = only.to_markdown();
        assert!(md.contains("Serving") && !md.contains("GEOMEAN"));
    }

    #[test]
    fn comparator_gates_serve_tail_latency_and_throughput() {
        let mut base = tiny_report();
        base.serve = vec![serve_scenario("s", 1.0e6, 1000.0)];

        // 20% p99 growth fails, 20% throughput loss fails …
        let mut slow = base.clone();
        slow.serve = vec![serve_scenario("s", 1.2e6, 1000.0)];
        assert!(!compare(&base, &slow, 10.0).passed());
        let mut starved = base.clone();
        starved.serve = vec![serve_scenario("s", 1.0e6, 800.0)];
        let cmp = compare(&base, &starved, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].metric, "throughput_rps");

        // … while gains in either direction only count as improvements.
        let mut faster = base.clone();
        faster.serve = vec![serve_scenario("s", 0.5e6, 2000.0)];
        let cmp = compare(&base, &faster, 10.0);
        assert!(cmp.passed());
        assert_eq!(cmp.improvements.len(), 2);

        // a vanished scenario fails the gate
        let mut gone = base.clone();
        gone.serve.clear();
        let cmp = compare(&base, &gone, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, ["serve s on ALL"]);
    }

    #[test]
    fn comparator_gates_cache_hit_rate_and_shard_miss_count() {
        let mut base = tiny_report();
        base.serve = vec![serve_scenario_with(
            "s",
            &[("cache_hit_rate", 0.8), ("shard_miss_count", 10.0)],
        )];

        // a cooling feature cache fails the gate…
        let mut cooled = base.clone();
        cooled.serve = vec![serve_scenario_with(
            "s",
            &[("cache_hit_rate", 0.6), ("shard_miss_count", 10.0)],
        )];
        let cmp = compare(&base, &cooled, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "cache_hit_rate");

        // …and so do growing shard misses…
        let mut missy = base.clone();
        missy.serve = vec![serve_scenario_with(
            "s",
            &[("cache_hit_rate", 0.8), ("shard_miss_count", 20.0)],
        )];
        let cmp = compare(&base, &missy, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "shard_miss_count");

        // …while moves inside the threshold and in the good direction
        // pass.
        let mut better = base.clone();
        better.serve = vec![serve_scenario_with(
            "s",
            &[("cache_hit_rate", 0.95), ("shard_miss_count", 2.0)],
        )];
        let cmp = compare(&base, &better, 10.0);
        assert!(cmp.passed());
        assert_eq!(cmp.improvements.len(), 2);
        let mut close = base.clone();
        close.serve = vec![serve_scenario_with(
            "s",
            &[("cache_hit_rate", 0.75), ("shard_miss_count", 10.5)],
        )];
        assert!(compare(&base, &close, 10.0).passed());
    }

    /// A synthetic sweep row over the four frontier objectives.
    fn sweep_row(name: &str, p99: f64, thr: f64, cost: f64, dram: f64) -> SweepRowRecord {
        SweepRowRecord {
            scenario: name.into(),
            metrics: vec![
                ("p99_ns".into(), p99),
                ("throughput_rps".into(), thr),
                ("replica_seconds".into(), cost),
                ("dram_bytes".into(), dram),
            ],
        }
    }

    #[test]
    fn dominance_needs_no_worse_everywhere_and_better_somewhere() {
        let a = sweep_row("a", 1.0, 100.0, 1.0, 1.0);
        let better_tail = sweep_row("b", 0.5, 100.0, 1.0, 1.0);
        let tradeoff = sweep_row("c", 0.5, 100.0, 2.0, 1.0);
        assert!(dominates(&better_tail, &a));
        assert!(!dominates(&a, &better_tail));
        assert!(!dominates(&a, &a), "dominance is irreflexive");
        assert!(
            !dominates(&tradeoff, &a) && !dominates(&a, &tradeoff),
            "a tradeoff dominates nothing"
        );
        // a row missing an objective is incomparable, not zero
        let partial = SweepRowRecord {
            scenario: "partial".into(),
            metrics: vec![("p99_ns".into(), 0.1)],
        };
        assert!(!dominates(&partial, &a) && !dominates(&a, &partial));
    }

    #[test]
    fn frontier_excludes_exactly_the_dominated_rows() {
        let table = vec![
            sweep_row("cheap-slow", 4.0, 50.0, 1.0, 8.0),
            sweep_row("fast-costly", 1.0, 200.0, 4.0, 8.0),
            sweep_row("dominated", 4.0, 40.0, 2.0, 8.0), // worse than cheap-slow
            sweep_row("balanced", 2.0, 120.0, 2.0, 8.0),
        ];
        let frontier = pareto_frontier(&table);
        assert_eq!(frontier, [0, 1, 3]);
        // every excluded row is dominated by some frontier row
        assert!(frontier.iter().any(|&i| dominates(&table[i], &table[2])));
    }

    #[test]
    fn recommendation_picks_the_cheapest_slo_meeting_frontier_config() {
        let table = vec![
            sweep_row("cheap-slow", 4.0, 50.0, 1.0, 8.0),
            sweep_row("fast-costly", 1.0, 200.0, 4.0, 8.0),
            sweep_row("balanced", 2.0, 120.0, 2.0, 8.0),
        ];
        let frontier = pareto_frontier(&table);
        assert_eq!(frontier, [0, 1, 2]);

        // the cheapest config meeting a 2.5 ns SLO is "balanced"
        let rec = recommend(&table, &frontier, 2.5, 0.0);
        assert!(rec.feasible);
        assert_eq!(rec.scenario, "balanced");
        assert_eq!(rec.metric("replica_seconds"), Some(2.0));
        // a loose SLO picks the globally cheapest config
        assert_eq!(
            recommend(&table, &frontier, 10.0, 0.0).scenario,
            "cheap-slow"
        );
        // a budget can force the faster, pricier config out
        let rec = recommend(&table, &frontier, 1.5, 3.0);
        assert!(!rec.feasible, "only fast-costly meets the SLO, over budget");
        assert!(rec.scenario.is_empty() && rec.metrics.is_empty());
        // an impossible SLO is infeasible, not a panic
        assert!(!recommend(&table, &frontier, 0.1, 0.0).feasible);
    }

    #[test]
    fn sweep_records_round_trip_render_and_never_gate() {
        let table = vec![
            sweep_row("a", 1.0e6, 200.0, 4.0, 8.0),
            sweep_row("b", 4.0e6, 50.0, 1.0, 8.0),
        ];
        let frontier_idx = pareto_frontier(&table);
        let rec = recommend(&table, &frontier_idx, 5.0e6, 0.0);
        let mut r = tiny_report();
        r.sweep = vec![SweepRecord {
            name: "default".into(),
            axes: vec![("rate".into(), "600000,1200000".into())],
            requests: 384,
            platform: "HiHGNN+GDR".into(),
            frontier: frontier_idx
                .iter()
                .map(|&i| table[i].scenario.clone())
                .collect(),
            table,
            recommend: Some(rec),
        }];
        let parsed = BenchReport::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(parsed, r);
        let md = r.to_markdown();
        assert!(md.contains("Pareto frontier") && md.contains("recommended"));

        // sweeps are reported, never gated: stripping or perturbing the
        // sweep family moves nothing in the comparator.
        let mut gone = r.clone();
        gone.sweep.clear();
        assert!(compare(&r, &gone, 10.0).passed());
        assert!(compare(&gone, &r, 10.0).passed());

        // a recommend-free record parses with recommend = None
        let mut bare = r.clone();
        bare.sweep[0].recommend = None;
        let parsed = BenchReport::parse(&bare.to_json().to_compact()).unwrap();
        assert_eq!(parsed, bare);
    }

    #[test]
    fn comparator_gates_fault_metrics_only_when_the_baseline_pins_them() {
        let mut base = tiny_report();
        base.serve = vec![serve_scenario_with(
            "s",
            &[("availability", 1.0), ("failover_ns", 20_000.0)],
        )];

        // shrinking availability and growing failover both fail …
        let mut flaky = base.clone();
        flaky.serve = vec![serve_scenario_with(
            "s",
            &[("availability", 0.8), ("failover_ns", 20_000.0)],
        )];
        let cmp = compare(&base, &flaky, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].metric, "availability");
        let mut slow_failover = base.clone();
        slow_failover.serve = vec![serve_scenario_with(
            "s",
            &[("availability", 1.0), ("failover_ns", 40_000.0)],
        )];
        let cmp = compare(&base, &slow_failover, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].metric, "failover_ns");

        // … and a current report that *lost* a pinned fault metric fails
        // as missing, like any gated metric.
        let mut lost = base.clone();
        lost.serve = vec![serve_scenario_with(
            "s",
            &[("availability", 1.0), ("failover_ns", 20_000.0)],
        )];
        lost.serve[0].runs[0]
            .metrics
            .retain(|(k, _)| k != "availability");
        let cmp = compare(&base, &lost, 10.0);
        assert!(!cmp.passed());
        assert!(cmp.missing.iter().any(|m| m.contains("availability")));

        // A *baseline* without the fault keys gates nothing on them: the
        // same degraded current report passes (pre-fault back-compat).
        let mut old = base.clone();
        for s in &mut old.serve {
            for r in &mut s.runs {
                r.metrics
                    .retain(|(k, _)| !SERVE_FAULT_GATED_METRICS.iter().any(|&(fk, _)| fk == k));
            }
        }
        assert!(compare(&old, &flaky, 10.0).passed());
    }

    #[test]
    fn comparator_gates_cost_metrics_only_when_the_baseline_pins_them() {
        let mut base = tiny_report();
        base.serve = vec![serve_scenario_with(
            "s",
            &[("replica_seconds", 2.0), ("slo_violation_rate", 0.01)],
        )];

        // burning more replica-seconds fails — the "meet the SLO at
        // minimum cost" half of the serving evaluation …
        let mut pricey = base.clone();
        pricey.serve = vec![serve_scenario_with(
            "s",
            &[("replica_seconds", 3.0), ("slo_violation_rate", 0.01)],
        )];
        let cmp = compare(&base, &pricey, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].metric, "replica_seconds");

        // … and so does a growing violation rate.
        let mut violating = base.clone();
        violating.serve = vec![serve_scenario_with(
            "s",
            &[("replica_seconds", 2.0), ("slo_violation_rate", 0.2)],
        )];
        let cmp = compare(&base, &violating, 10.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions[0].metric, "slo_violation_rate");

        // A current report that *lost* a pinned cost metric fails as
        // missing, like any gated metric.
        let mut lost = base.clone();
        lost.serve[0].runs[0]
            .metrics
            .retain(|(k, _)| k != "replica_seconds");
        let cmp = compare(&base, &lost, 10.0);
        assert!(!cmp.passed());
        assert!(cmp.missing.iter().any(|m| m.contains("replica_seconds")));

        // A *baseline* without the cost keys gates nothing on them:
        // reports written before the keys existed stay comparable.
        let mut old = base.clone();
        for s in &mut old.serve {
            for r in &mut s.runs {
                r.metrics
                    .retain(|(k, _)| !SERVE_COST_GATED_METRICS.iter().any(|&(ck, _)| ck == k));
            }
        }
        assert!(compare(&old, &pricey, 10.0).passed());
        assert!(compare(&old, &violating, 10.0).passed());
    }
}
