//! [`SystemBuilder`]: the single entry point for assembling a simulated
//! system — dataset, model, frontend and accelerator configuration —
//! with validation up front instead of panics downstream.
//!
//! ```text
//! SystemBuilder::new()
//!     .dataset(..) .model(..) .scale(..)      // workload selection
//!     .accel_config(..) .frontend_config(..)  // hardware
//!     .build()?                               // validated System
//! ```
//!
//! [`System::run`] executes the combined GDR-HGNN + HiHGNN pipeline;
//! [`System::execute_on`] runs the same workload on any other
//! [`Platform`]; [`System::session`] opens a streaming frontend
//! [`Session`] over the built semantic graphs.

use gdr_accel::hihgnn::HiHgnnConfig;
use gdr_accel::platform::{Platform, PlatformRun};
use gdr_frontend::config::FrontendConfig;
use gdr_frontend::session::Session;
use gdr_hetgraph::datasets::Dataset;
use gdr_hetgraph::{BipartiteGraph, GdrError, GdrResult, HeteroGraph};
use gdr_hgnn::model::{ModelConfig, ModelKind};
use gdr_hgnn::workload::Workload;

use crate::combined::{CombinedRun, CombinedSystem};

/// Builder over the whole simulation stack.
///
/// Defaults reproduce the paper's headline cell: ACM, RGCN, Table 2
/// scale, Table 3 hardware.
///
/// # Examples
///
/// ```
/// use gdr_system::builder::SystemBuilder;
/// use gdr_hetgraph::datasets::Dataset;
/// use gdr_hgnn::model::ModelKind;
///
/// let system = SystemBuilder::new()
///     .dataset(Dataset::Imdb)
///     .model(ModelKind::Rgat)
///     .seed(7)
///     .scale(0.05)
///     .build()
///     .expect("valid configuration");
/// let run = system.run().expect("aligned by construction");
/// assert_eq!(run.report().platform, "HiHGNN+GDR");
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    dataset: Dataset,
    model: ModelConfig,
    seed: u64,
    scale: f64,
    accel: HiHgnnConfig,
    frontend: FrontendConfig,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBuilder {
    /// Starts from the paper's defaults (ACM, RGCN, full scale, Table 3
    /// hardware on both sides).
    pub fn new() -> Self {
        Self {
            dataset: Dataset::Acm,
            model: ModelConfig::paper(ModelKind::Rgcn),
            seed: 42,
            scale: 1.0,
            accel: HiHgnnConfig::default(),
            frontend: FrontendConfig::default(),
        }
    }

    /// Selects the dataset to synthesize.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Selects an HGNN model with the paper's hyper-parameters.
    pub fn model(mut self, kind: ModelKind) -> Self {
        self.model = ModelConfig::paper(kind);
        self
    }

    /// Supplies a fully custom model configuration.
    pub fn model_config(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Dataset generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dataset scale (1.0 = Table 2 sizes). Must be positive and finite.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Accelerator-side hardware configuration.
    pub fn accel_config(mut self, cfg: HiHgnnConfig) -> Self {
        self.accel = cfg;
        self
    }

    /// Frontend-side hardware configuration.
    pub fn frontend_config(mut self, cfg: FrontendConfig) -> Self {
        self.frontend = cfg;
        self
    }

    /// Validates the configuration, synthesizes the dataset, and builds
    /// the executable [`System`].
    ///
    /// # Errors
    ///
    /// * [`GdrError::InvalidConfig`] — non-positive `scale`, zero
    ///   accelerator lanes or clock, any zero-capacity on-chip buffer on
    ///   either side;
    /// * [`GdrError::EmptyInput`] — the dataset produced no semantic
    ///   graphs (degenerate scale).
    pub fn build(self) -> GdrResult<System> {
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(GdrError::invalid_config(
                "scale",
                format!("must be positive and finite, got {}", self.scale),
            ));
        }
        if self.accel.lanes == 0 {
            return Err(GdrError::invalid_config("lanes", "need at least one lane"));
        }
        let clock_ok = |ghz: f64| ghz.is_finite() && ghz > 0.0;
        if !clock_ok(self.accel.clock_ghz) || !clock_ok(self.frontend.clock_ghz) {
            return Err(GdrError::invalid_config(
                "clock_ghz",
                "clocks must be positive and finite",
            ));
        }
        for (what, bytes) in [
            ("na_buffer_bytes", self.accel.na_buffer_bytes),
            ("fp_buffer_bytes", self.accel.fp_buffer_bytes),
            ("sf_buffer_bytes", self.accel.sf_buffer_bytes),
            ("att_buffer_bytes", self.accel.att_buffer_bytes),
            ("fifo_bytes", self.frontend.fifo_bytes),
            ("matching_buffer_bytes", self.frontend.matching_buffer_bytes),
            (
                "candidate_buffer_bytes",
                self.frontend.candidate_buffer_bytes,
            ),
            ("adj_buffer_bytes", self.frontend.adj_buffer_bytes),
        ] {
            if bytes == 0 {
                return Err(GdrError::invalid_config(
                    what,
                    "on-chip buffers need non-zero capacity",
                ));
            }
        }

        let het = self.dataset.build_scaled(self.seed, self.scale);
        let graphs = het.all_semantic_graphs();
        if graphs.is_empty() {
            return Err(GdrError::EmptyInput {
                what: "semantic graphs",
            });
        }
        let workload = Workload::from_hetero(self.model, &het);
        Ok(System {
            combined: CombinedSystem::new(self.accel, self.frontend),
            workload,
            graphs,
            het,
        })
    }
}

/// A validated, ready-to-execute system: synthesized dataset, workload
/// descriptors, and the combined frontend + accelerator configuration.
#[derive(Debug, Clone)]
pub struct System {
    combined: CombinedSystem,
    workload: Workload,
    graphs: Vec<BipartiteGraph>,
    het: HeteroGraph,
}

impl System {
    /// The synthesized heterogeneous graph.
    pub fn hetero(&self) -> &HeteroGraph {
        &self.het
    }

    /// The semantic graphs (SGB output), in schema order.
    pub fn graphs(&self) -> &[BipartiteGraph] {
        &self.graphs
    }

    /// The workload descriptors, index-aligned with [`System::graphs`].
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The combined-system configuration.
    pub fn combined(&self) -> &CombinedSystem {
        &self.combined
    }

    /// Opens a streaming frontend [`Session`] over the built graphs.
    pub fn session(&self) -> Session<'_> {
        Session::new(self.combined.frontend_config().clone(), &self.graphs)
    }

    /// Executes the combined GDR-HGNN + HiHGNN pipeline.
    ///
    /// # Errors
    ///
    /// Propagates platform validation errors; with a builder-built
    /// system the inputs are aligned by construction, so this only
    /// fails if the workload or graphs were swapped out manually.
    pub fn run(&self) -> GdrResult<CombinedRun> {
        self.combined.try_execute(&self.workload, &self.graphs)
    }

    /// Executes this system's workload on an arbitrary [`Platform`]
    /// (GPU baselines, plain HiHGNN, or any external implementation).
    ///
    /// # Errors
    ///
    /// Propagates the platform's validation errors.
    pub fn execute_on(&self, platform: &dyn Platform) -> GdrResult<PlatformRun> {
        platform.execute(&self.workload, &self.graphs, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdr_accel::gpu::GpuSim;

    #[test]
    fn defaults_build_and_run() {
        let system = SystemBuilder::new().scale(0.04).build().unwrap();
        assert!(!system.graphs().is_empty());
        let run = system.run().unwrap();
        assert_eq!(run.report().platform, "HiHGNN+GDR");
        assert!(run.report().time_ns > 0.0);
    }

    #[test]
    fn zero_capacity_buffers_rejected() {
        let err = SystemBuilder::new()
            .accel_config(HiHgnnConfig {
                na_buffer_bytes: 0,
                ..HiHgnnConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GdrError::InvalidConfig {
                what: "na_buffer_bytes",
                ..
            }
        ));

        let err = SystemBuilder::new()
            .frontend_config(FrontendConfig {
                fifo_bytes: 0,
                ..FrontendConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            GdrError::InvalidConfig {
                what: "fifo_bytes",
                ..
            }
        ));
    }

    #[test]
    fn bad_scale_and_lanes_rejected() {
        for scale in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = SystemBuilder::new().scale(scale).build().unwrap_err();
            assert!(matches!(err, GdrError::InvalidConfig { what: "scale", .. }));
        }
        let err = SystemBuilder::new()
            .accel_config(HiHgnnConfig {
                lanes: 0,
                ..HiHgnnConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, GdrError::InvalidConfig { what: "lanes", .. }));
    }

    #[test]
    fn session_and_platforms_share_the_workload() {
        let system = SystemBuilder::new()
            .dataset(Dataset::Dblp)
            .model(ModelKind::SimpleHgn)
            .scale(0.04)
            .build()
            .unwrap();
        let fe = system.session().par_process();
        assert_eq!(fe.per_graph().len(), system.graphs().len());
        let t4 = system
            .execute_on(&GpuSim::new(gdr_accel::calib::T4))
            .unwrap();
        assert_eq!(t4.report.platform, "T4");
    }
}
