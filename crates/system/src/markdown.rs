//! Minimal markdown table formatting for experiment reports.

/// Renders a GitHub-flavored markdown table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// use gdr_system::markdown::table;
/// let md = table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert!(md.contains("| a | b |"));
/// assert!(md.contains("| 1 | 2 |"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let md = table(
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "|---|---|");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn validates_row_width() {
        let _ = table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
