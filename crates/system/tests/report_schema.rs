//! Golden-file guard for the `gdr-bench/v1` JSON schema.
//!
//! The CI perf gate diffs reports produced by different commits, so the
//! schema's key set *and ordering* are a compatibility contract. This
//! test serializes the [`ExperimentConfig::test_scale`] grid and checks
//! every key path, in first-appearance order, against
//! `tests/golden/bench_schema_keys.txt`. If a change here is
//! intentional, update the golden file AND bump the schema id in
//! `gdr_system::report::SCHEMA` (plus `bench/baseline.json`).

use gdr_system::grid::{paper_platforms, platform_refs, ExperimentConfig};
use gdr_system::json::Json;
use gdr_system::report::{
    compare, BenchReport, BreakdownRecord, BreakdownStage, HostRecord, ServeRunRecord,
    ServeScenarioRecord, SweepRecommendation, SweepRecord, SweepRowRecord, BREAKDOWN_STAGE_KEYS,
    HOST_METRIC_KEYS, SERVE_METRIC_KEYS, SWEEP_OBJECTIVES,
};

const GOLDEN: &str = include_str!("golden/bench_schema_keys.txt");

/// Collects unique key paths (`points[].runs[].time_ns` style) in
/// first-appearance order — mirroring how a schema consumer discovers
/// fields.
fn key_paths(v: &Json, prefix: &str, seen: &mut Vec<String>) {
    match v {
        Json::Obj(pairs) => {
            for (k, val) in pairs {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                if !seen.contains(&p) {
                    seen.push(p.clone());
                }
                key_paths(val, &p, seen);
            }
        }
        Json::Arr(items) => {
            let p = format!("{prefix}[]");
            if !seen.contains(&p) {
                seen.push(p.clone());
            }
            for item in items {
                key_paths(item, &p, seen);
            }
        }
        _ => {}
    }
}

fn test_scale_report() -> BenchReport {
    let platforms = paper_platforms();
    let mut report =
        BenchReport::collect(&platform_refs(&platforms), &ExperimentConfig::test_scale())
            .expect("paper platforms accept grid inputs");
    // A representative serve record so the serve family's key paths are
    // pinned alongside the grid's. `gdr-serve` emits exactly
    // SERVE_METRIC_KEYS (its own tests assert that), so a hand-built
    // record covers the schema without a cross-crate dev-dependency.
    report.serve = vec![ServeScenarioRecord {
        scenario: "sharded/warm-cache/shard-affinity-partial".into(),
        arrival: "poisson".into(),
        rate_rps: 1_200_000.0,
        batch: "size-capped:8".into(),
        scheduler: "shard-affinity-partial".into(),
        replicas: 3,
        shards: 3,
        cache_bytes: 64 << 20,
        autoscale: "queue:32:4:max4".into(),
        faults: "crash:0@80000;control:vr".into(),
        seed: 42,
        requests: 384,
        runs: ["ALL", "HiHGNN+GDR"]
            .into_iter()
            .map(|platform| ServeRunRecord {
                platform: platform.into(),
                metrics: SERVE_METRIC_KEYS
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| (k.to_string(), (i + 1) as f64))
                    .collect(),
            })
            .collect(),
    }];
    // A representative host record pins the `host` family's key paths.
    // Host metrics are wall clock (reported, never gated), so the test
    // uses synthetic values rather than a real measurement.
    report.host = vec![HostRecord {
        name: "session/DBLP/reused".into(),
        metrics: HOST_METRIC_KEYS
            .iter()
            .enumerate()
            .map(|(i, &k)| (k.to_string(), (i + 1) as f64))
            .collect(),
    }];
    // A representative sweep record pins the `sweep` family's key paths:
    // axes self-description, one table row per scenario (SWEEP_OBJECTIVES
    // values), frontier labels, and the resolved recommendation.
    let sweep_row = |scenario: &str| SweepRowRecord {
        scenario: scenario.into(),
        metrics: SWEEP_OBJECTIVES
            .iter()
            .enumerate()
            .map(|(i, &(k, _))| (k.to_string(), (i + 1) as f64))
            .collect(),
    };
    report.sweep = vec![SweepRecord {
        name: "default".into(),
        axes: vec![
            ("arrival".into(), "poisson,bursty".into()),
            ("rate".into(), "600000,1200000".into()),
        ],
        requests: 384,
        platform: "HiHGNN+GDR".into(),
        table: vec![
            sweep_row("poisson-r600000/immediate/round-robin/x2/s0/c0/off/none"),
            sweep_row("bursty-r1200000/size-capped:8/least-loaded/x3/s0/c0/off/none"),
        ],
        frontier: vec!["poisson-r600000/immediate/round-robin/x2/s0/c0/off/none".into()],
        recommend: Some(SweepRecommendation {
            slo_p99_ns: 2_000_000.0,
            budget_replica_seconds: 1.0,
            feasible: true,
            scenario: "poisson-r600000/immediate/round-robin/x2/s0/c0/off/none".into(),
            metrics: SWEEP_OBJECTIVES
                .iter()
                .enumerate()
                .map(|(i, &(k, _))| (k.to_string(), (i + 1) as f64))
                .collect(),
        }),
    }];
    // A representative breakdown record pins the `breakdown` family's
    // key paths: one stage entry per BREAKDOWN_STAGE_KEYS, with the
    // headline mean equal to the sum of the stage means (the invariant
    // `gdr_serve`'s trace tests prove across seeds).
    let stages: Vec<BreakdownStage> = BREAKDOWN_STAGE_KEYS
        .iter()
        .enumerate()
        .map(|(i, &stage)| BreakdownStage {
            stage: stage.into(),
            mean_ns: (i + 1) as f64 * 100.0,
            p50_ns: (i + 1) as f64 * 90.0,
            p99_ns: (i + 1) as f64 * 400.0,
        })
        .collect();
    report.breakdown = vec![BreakdownRecord {
        scenario: "sharded/warm-cache/shard-affinity-partial".into(),
        seed: 42,
        requests: 384,
        mean_latency_ns: stages.iter().map(|s| s.mean_ns).sum(),
        stages,
    }];
    report
}

#[test]
fn schema_key_paths_match_golden_file() {
    let report = test_scale_report();
    assert_eq!(report.points.len(), 9, "grid covers all nine cells");
    let mut seen = Vec::new();
    key_paths(&report.to_json(), "", &mut seen);
    let golden: Vec<&str> = GOLDEN.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(
        seen, golden,
        "gdr-bench/v1 key paths drifted; if intentional, regenerate \
         tests/golden/bench_schema_keys.txt and bump report::SCHEMA"
    );
}

#[test]
fn serialization_is_deterministic_and_round_trips() {
    let report = test_scale_report();
    let a = report.to_json().to_pretty();
    let b = report.to_json().to_pretty();
    assert_eq!(a, b, "same report must serialize byte-identically");
    let parsed = BenchReport::parse(&a).expect("own output parses");
    assert_eq!(
        parsed.to_json().to_pretty(),
        a,
        "parse → serialize must be the identity"
    );
}

#[test]
fn gate_passes_against_own_serialization() {
    // The end-to-end CI path in miniature: collect → write → read →
    // compare. Identical metrics must pass at any threshold, including 0.
    let report = test_scale_report();
    let reread = BenchReport::parse(&report.to_json().to_pretty()).unwrap();
    let cmp = compare(&reread, &report, 0.0);
    assert!(cmp.passed(), "round-tripped report must gate clean");
    assert!(cmp.regressions.is_empty() && cmp.missing.is_empty());
}

#[test]
fn gate_catches_regression_injected_into_serialized_report() {
    // Mirror of the CI self-test: textually perturb a serialized report
    // (as `sed` does in the workflow) and require the gate to fail.
    let report = test_scale_report();
    let json = report.to_json();
    let slowed = scale_metric(&json, "time_ns", 1.2);
    let slow_report = BenchReport::from_json(&slowed).unwrap();
    let cmp = compare(&report, &slow_report, 10.0);
    assert!(!cmp.passed());
    assert_eq!(cmp.regressions.len(), 36, "9 cells × 4 platforms");

    let ok = BenchReport::from_json(&scale_metric(&json, "time_ns", 1.05)).unwrap();
    assert!(compare(&report, &ok, 10.0).passed());
}

#[test]
fn gate_thresholds_cover_the_new_serve_metrics() {
    // cache_hit_rate is gated higher-is-better, shard_miss_count
    // lower-is-better — both through the serialized report, as CI
    // exercises them.
    let report = test_scale_report();
    let json = report.to_json();

    let cooled = BenchReport::from_json(&scale_metric(&json, "cache_hit_rate", 0.8)).unwrap();
    let cmp = compare(&report, &cooled, 10.0);
    assert!(!cmp.passed(), "a 20% hit-rate loss must fail the gate");
    assert!(cmp.regressions.iter().all(|d| d.metric == "cache_hit_rate"));

    let missy = BenchReport::from_json(&scale_metric(&json, "shard_miss_count", 1.2)).unwrap();
    let cmp = compare(&report, &missy, 10.0);
    assert!(!cmp.passed(), "20% more shard misses must fail the gate");
    assert!(cmp
        .regressions
        .iter()
        .all(|d| d.metric == "shard_miss_count"));

    // within-threshold drift passes in both directions
    let ok = BenchReport::from_json(&scale_metric(&json, "cache_hit_rate", 0.95)).unwrap();
    assert!(compare(&report, &ok, 10.0).passed());
    let ok = BenchReport::from_json(&scale_metric(&json, "shard_miss_count", 1.05)).unwrap();
    assert!(compare(&report, &ok, 10.0).passed());

    // moves in the good direction count as improvements, not failures
    let better = BenchReport::from_json(&scale_metric(&json, "shard_miss_count", 0.5)).unwrap();
    let cmp = compare(&report, &better, 10.0);
    assert!(cmp.passed());
    assert!(!cmp.improvements.is_empty());
}

#[test]
fn reports_without_replica_seconds_or_host_still_parse_and_gate() {
    // Back-compat within the schema id: baselines written before the
    // `replica_seconds` serve metric and the `host` record family
    // existed must keep parsing (empty host, serve records simply
    // lacking the key) and keep gating cleanly as the *baseline* —
    // `replica_seconds` gates conditionally, only once a baseline pins
    // it, and everything in `host` is never gated.
    let current = test_scale_report();
    let old_json = strip_key(&strip_key(&current.to_json(), "replica_seconds"), "host");
    let old = BenchReport::from_json(&old_json).expect("pre-host reports must parse");
    assert!(old.host.is_empty(), "missing host family parses as empty");
    assert_eq!(
        old.serve[0].aggregate().unwrap().metric("replica_seconds"),
        None,
        "the metric is simply absent on old records"
    );
    // old baseline vs current report: nothing pinned, nothing gated.
    assert!(compare(&old, &current, 10.0).passed());
    // current baseline vs old report: the baseline pins the cost
    // metric, so a report that lost it must fail as missing.
    let cmp = compare(&current, &old, 10.0);
    assert!(
        !cmp.passed(),
        "dropping a pinned replica_seconds must not gate clean"
    );
    assert!(cmp.regressions.is_empty());
    assert!(cmp.missing.iter().any(|m| m.contains("replica_seconds")));
    // …and the old report round-trips through its own serialization.
    let reread = BenchReport::parse(&old.to_json().to_pretty()).unwrap();
    assert_eq!(reread.serve, old.serve);
}

#[test]
fn pre_fault_baselines_parse_and_gate_without_the_new_metrics() {
    // Baselines written before the fault subsystem lack the `faults`
    // scenario field and the five fault metrics (`dropped`,
    // `availability`, `p99_under_failure_ns`, `failover_ns`,
    // `requeued_batches`). They must keep parsing — new fields
    // default-absent, not gated-to-zero — and keep gating cleanly as the
    // *baseline*: SERVE_FAULT_GATED_METRICS only arm once a baseline
    // pins them.
    let current = test_scale_report();
    let mut old_json = current.to_json();
    for key in [
        "faults",
        "dropped",
        "availability",
        "p99_under_failure_ns",
        "failover_ns",
        "requeued_batches",
    ] {
        old_json = strip_key(&old_json, key);
    }
    let old = BenchReport::from_json(&old_json).expect("pre-fault reports must parse");
    assert_eq!(
        old.serve[0].faults, "none",
        "a missing fault plan parses as the empty plan"
    );
    assert_eq!(
        old.serve[0].aggregate().unwrap().metric("availability"),
        None,
        "the metrics are simply absent on old records"
    );
    // old baseline vs current report: nothing pinned, nothing gated.
    assert!(compare(&old, &current, 10.0).passed());
    // current baseline vs old report: the baseline pins the fault
    // metrics, so a report that lost them must fail as missing.
    let cmp = compare(&current, &old, 10.0);
    assert!(
        !cmp.passed(),
        "dropping pinned fault metrics must not gate clean"
    );
    assert!(cmp.regressions.is_empty());
    assert!(cmp
        .missing
        .iter()
        .any(|m| m.contains("availability") || m.contains("failover_ns")));
    // …and the old report round-trips through its own serialization.
    let reread = BenchReport::parse(&old.to_json().to_pretty()).unwrap();
    assert_eq!(reread.serve, old.serve);
}

#[test]
fn pre_sweep_baselines_parse_and_gate_cleanly() {
    // Baselines written before the `sweep` record family existed must
    // keep parsing (missing family → empty) and keep gating cleanly in
    // both directions: sweep records are reported, never gated, so their
    // presence or absence cannot move the gate.
    let current = test_scale_report();
    let old_json = strip_key(&current.to_json(), "sweep");
    let old = BenchReport::from_json(&old_json).expect("pre-sweep reports must parse");
    assert!(old.sweep.is_empty(), "missing sweep family parses as empty");
    assert!(compare(&old, &current, 10.0).passed());
    assert!(compare(&current, &old, 10.0).passed());
    // …and the stripped report round-trips through its own serialization.
    let reread = BenchReport::parse(&old.to_json().to_pretty()).unwrap();
    assert!(reread.sweep.is_empty());
    assert_eq!(reread.serve, old.serve);

    // A recommend-free sweep record (no --slo-p99) also round-trips.
    let mut bare = current.clone();
    bare.sweep[0].recommend = None;
    let reread = BenchReport::parse(&bare.to_json().to_pretty()).unwrap();
    assert_eq!(reread.sweep, bare.sweep);
}

#[test]
fn pre_breakdown_baselines_parse_and_gate_cleanly() {
    // Baselines written before the `breakdown` record family existed
    // must keep parsing (missing family → empty) and keep gating
    // cleanly in both directions: breakdown records only decompose
    // latencies the `serve` family already gates, so their presence or
    // absence cannot move the gate.
    let current = test_scale_report();
    let old_json = strip_key(&current.to_json(), "breakdown");
    let old = BenchReport::from_json(&old_json).expect("pre-breakdown reports must parse");
    assert!(
        old.breakdown.is_empty(),
        "missing breakdown family parses as empty"
    );
    assert!(compare(&old, &current, 10.0).passed());
    assert!(compare(&current, &old, 10.0).passed());
    // …and the stripped report round-trips through its own serialization.
    let reread = BenchReport::parse(&old.to_json().to_pretty()).unwrap();
    assert!(reread.breakdown.is_empty());
    assert_eq!(reread.serve, old.serve);
}

#[test]
fn breakdown_records_round_trip_render_and_never_gate() {
    let current = test_scale_report();

    // Round trip preserves the records and their stage order exactly.
    let reread = BenchReport::parse(&current.to_json().to_pretty()).unwrap();
    assert_eq!(reread.breakdown, current.breakdown);
    let stages: Vec<&str> = reread.breakdown[0]
        .stages
        .iter()
        .map(|s| s.stage.as_str())
        .collect();
    assert_eq!(stages, BREAKDOWN_STAGE_KEYS);

    // The markdown report renders one attribution row per stage.
    let md = current.to_markdown();
    assert!(md.contains("Latency attribution"));
    for key in BREAKDOWN_STAGE_KEYS {
        assert!(md.contains(key), "stage {key} missing from the markdown");
    }

    // Wildly different breakdown values never move the gate: the family
    // is reported, not gated.
    let mut slow = current.clone();
    for stage in &mut slow.breakdown[0].stages {
        stage.mean_ns *= 100.0;
        stage.p99_ns *= 100.0;
    }
    slow.breakdown[0].mean_latency_ns *= 100.0;
    assert!(compare(&current, &slow, 0.0).passed());
    assert!(compare(&slow, &current, 0.0).passed());
}

/// Removes every object entry named `key`, recursively — simulating a
/// report written before that field existed.
fn strip_key(v: &Json, key: &str) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != key)
                .map(|(k, val)| (k.clone(), strip_key(val, key)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(|i| strip_key(i, key)).collect()),
        other => other.clone(),
    }
}

fn scale_metric(v: &Json, key: &str, factor: f64) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .map(|(k, val)| {
                    if k == key {
                        if let Json::Num(x) = val {
                            return (k.clone(), Json::Num(x * factor));
                        }
                    }
                    (k.clone(), scale_metric(val, key, factor))
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(|i| scale_metric(i, key, factor)).collect()),
        other => other.clone(),
    }
}
