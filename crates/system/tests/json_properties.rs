//! Property tests for `gdr_system::json`, the hand-rolled parser the
//! bench and serve reports depend on.
//!
//! The build environment cannot fetch `proptest`, so these are
//! hand-rolled property loops in the style of `tests/properties.rs`:
//! every case derives an arbitrary nested [`Json`] tree — objects,
//! arrays, escaped strings, integers, dyadic fractions — from a
//! deterministic per-case seed, and checks that writing then parsing is
//! the identity, for both the compact and the pretty writer. Failures
//! reproduce from the case index alone.

use gdr_system::json::Json;

const CASES: u64 = 256;

/// Deterministic case expansion (SplitMix64).
fn mix(case: u64, salt: u64) -> u64 {
    let mut z = case
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An arbitrary string exercising every escape class the writer knows:
/// quotes, backslashes, control characters, tabs/newlines, and
/// multi-byte unicode.
fn arb_string(seed: u64) -> String {
    const ALPHABET: &[&str] = &[
        "a",
        "Z",
        "0",
        " ",
        "\"",
        "\\",
        "\n",
        "\r",
        "\t",
        "\u{1}",
        "\u{1f}",
        "é",
        "графа",
        "中",
        "🚀",
        "/",
        "{",
        "}",
        "[",
        "]",
        ":",
        ",",
        "-",
        ".",
        "e",
        "+",
    ];
    let len = (mix(seed, 101) % 12) as usize;
    (0..len)
        .map(|i| ALPHABET[mix(seed, 102 + i as u64) as usize % ALPHABET.len()])
        .collect()
}

/// An arbitrary number that survives an f64 → text → f64 round trip
/// exactly: integers below 2^53 (positive and negative) and dyadic
/// fractions — the classes the report schema actually emits.
fn arb_number(seed: u64) -> f64 {
    let int = (mix(seed, 201) % (1 << 53)) as f64;
    match mix(seed, 202) % 4 {
        0 => int,
        1 => -int,
        2 => int / (1u64 << (mix(seed, 203) % 20)) as f64,
        _ => -(int / (1u64 << (mix(seed, 204) % 20)) as f64),
    }
}

/// An arbitrary JSON tree of bounded depth. Leaves are null/bool/
/// number/string; inner nodes are arrays and (insertion-ordered,
/// possibly duplicate-keyed) objects.
fn arb_json(seed: u64, depth: u64) -> Json {
    let kind = if depth == 0 {
        mix(seed, 1) % 4
    } else {
        mix(seed, 1) % 6
    };
    match kind {
        0 => Json::Null,
        1 => Json::Bool(mix(seed, 2).is_multiple_of(2)),
        2 => Json::Num(arb_number(seed)),
        3 => Json::Str(arb_string(seed)),
        4 => {
            let n = mix(seed, 3) % 5;
            Json::arr((0..n).map(|i| arb_json(mix(seed, 10 + i), depth - 1)))
        }
        _ => {
            let n = mix(seed, 4) % 5;
            Json::obj((0..n).map(|i| {
                (
                    arb_string(mix(seed, 20 + i)),
                    arb_json(mix(seed, 30 + i), depth - 1),
                )
            }))
        }
    }
}

#[test]
fn write_then_parse_is_identity() {
    for case in 0..CASES {
        let v = arb_json(case, 4);
        let compact = v.to_compact();
        assert_eq!(
            Json::parse(&compact).as_ref(),
            Ok(&v),
            "case {case}: compact {compact:?}"
        );
        let pretty = v.to_pretty();
        assert_eq!(
            Json::parse(&pretty).as_ref(),
            Ok(&v),
            "case {case}: pretty {pretty:?}"
        );
    }
}

#[test]
fn serialization_is_canonical_after_one_round_trip() {
    // parse → write must be a fixed point: re-serializing a parsed
    // document reproduces it byte for byte (what the CI determinism
    // diff and the golden-file test rely on).
    for case in 0..CASES {
        let v = arb_json(case, 4);
        let pretty = v.to_pretty();
        let reparsed = Json::parse(&pretty).unwrap();
        assert_eq!(reparsed.to_pretty(), pretty, "case {case}");
        let compact = v.to_compact();
        assert_eq!(
            Json::parse(&compact).unwrap().to_compact(),
            compact,
            "case {case}"
        );
    }
}

#[test]
fn numbers_round_trip_exactly() {
    for case in 0..CASES {
        let x = arb_number(case);
        let text = Json::Num(x).to_compact();
        let back = Json::parse(&text).unwrap().as_f64().unwrap();
        assert_eq!(back, x, "case {case}: {text}");
    }
}

#[test]
fn object_key_order_survives_round_trips() {
    for case in 0..CASES {
        // Keys deliberately collide sometimes: first-match lookup and
        // order preservation must both hold regardless.
        let n = 1 + mix(case, 50) % 6;
        let v = Json::obj((0..n).map(|i| (format!("k{}", mix(case, 51 + i) % 4), Json::from(i))));
        let back = Json::parse(&v.to_pretty()).unwrap();
        let keys = |j: &Json| -> Vec<String> {
            j.as_obj().unwrap().iter().map(|(k, _)| k.clone()).collect()
        };
        assert_eq!(keys(&back), keys(&v), "case {case}");
    }
}
