//! Graph recoupling: vertex partition and subgraph generation
//! (paper Algorithm 2 and `GenerateGraph`).

use gdr_hetgraph::BipartiteGraph;

use crate::backbone::Backbone;
use crate::workspace::RecoupleScratch;

/// The four vertex classes of §4.1: source/destination vertices inside or
/// outside the graph backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexClass {
    /// Source vertex included in the backbone.
    SrcIn,
    /// Source vertex excluded from the backbone.
    SrcOut,
    /// Destination vertex included in the backbone.
    DstIn,
    /// Destination vertex excluded from the backbone.
    DstOut,
}

/// Vertex partition derived from a [`Backbone`]: the contents of the four
/// FIFOs (`Src_in`, `Src_out`, `Dst_in`, `Dst_out`) the Recoupler fills.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VertexPartition {
    src_in: Vec<u32>,
    src_out: Vec<u32>,
    dst_in: Vec<u32>,
    dst_out: Vec<u32>,
}

impl VertexPartition {
    /// Classifies every vertex of `g` against the backbone.
    ///
    /// Isolated vertices (degree 0) are excluded from the partition
    /// entirely — the paper's "eliminating irrelevant vertices from each
    /// subgraph".
    pub fn from_backbone(g: &BipartiteGraph, b: &Backbone) -> Self {
        let mut p = VertexPartition::default();
        Self::from_backbone_into(g, b, &mut p);
        p
    }

    /// Workspace variant of [`VertexPartition::from_backbone`]: the four
    /// class FIFOs are refilled in place, reusing their storage. Results
    /// are identical to the allocating path.
    pub fn from_backbone_into(g: &BipartiteGraph, b: &Backbone, out: &mut VertexPartition) {
        out.src_in.clear();
        out.src_out.clear();
        out.dst_in.clear();
        out.dst_out.clear();
        for s in 0..g.src_count() {
            if g.out_degree(s) == 0 {
                continue;
            }
            if b.src_in(s) {
                out.src_in.push(s as u32);
            } else {
                out.src_out.push(s as u32);
            }
        }
        for d in 0..g.dst_count() {
            if g.in_degree(d) == 0 {
                continue;
            }
            if b.dst_in(d) {
                out.dst_in.push(d as u32);
            } else {
                out.dst_out.push(d as u32);
            }
        }
    }

    /// Sources inside the backbone.
    pub fn src_in(&self) -> &[u32] {
        &self.src_in
    }

    /// Sources outside the backbone.
    pub fn src_out(&self) -> &[u32] {
        &self.src_out
    }

    /// Destinations inside the backbone.
    pub fn dst_in(&self) -> &[u32] {
        &self.dst_in
    }

    /// Destinations outside the backbone.
    pub fn dst_out(&self) -> &[u32] {
        &self.dst_out
    }

    /// Class of a source vertex, or `None` if isolated.
    pub fn classify_src(&self, s: u32) -> Option<VertexClass> {
        if self.src_in.binary_search(&s).is_ok() {
            Some(VertexClass::SrcIn)
        } else if self.src_out.binary_search(&s).is_ok() {
            Some(VertexClass::SrcOut)
        } else {
            None
        }
    }

    /// Class of a destination vertex, or `None` if isolated.
    pub fn classify_dst(&self, d: u32) -> Option<VertexClass> {
        if self.dst_in.binary_search(&d).is_ok() {
            Some(VertexClass::DstIn)
        } else if self.dst_out.binary_search(&d).is_ok() {
            Some(VertexClass::DstOut)
        } else {
            None
        }
    }
}

/// Which of the three restructured subgraphs an edge belongs to.
///
/// Every edge has at least one backbone endpoint (vertex-cover property),
/// so these three classes are exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubgraphKind {
    /// `Src_in × Dst_out`: backbone sources feeding streamed destinations.
    InOut,
    /// `Src_in × Dst_in`: edges internal to the backbone.
    InIn,
    /// `Src_out × Dst_in`: streamed sources feeding backbone destinations.
    OutIn,
}

impl SubgraphKind {
    /// All kinds in the emission order of the paper's Fig. 4 pipeline
    /// (`Src_out+Dst_in`, `Src_in+Dst_in`, `Src_in+Dst_out`).
    pub const ALL: [SubgraphKind; 3] =
        [SubgraphKind::OutIn, SubgraphKind::InIn, SubgraphKind::InOut];
}

impl std::fmt::Display for SubgraphKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SubgraphKind::InOut => "src_in x dst_out",
            SubgraphKind::InIn => "src_in x dst_in",
            SubgraphKind::OutIn => "src_out x dst_in",
        };
        f.write_str(s)
    }
}

/// The output of `GenerateGraph`: the three subgraphs `G_Ps1..G_Ps3`, each
/// over the **original** vertex id spaces so feature tables need no
/// remapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RestructuredSubgraphs {
    subgraphs: [BipartiteGraph; 3],
    cover_violations: usize,
}

impl RestructuredSubgraphs {
    /// Partitions the edges of `g` into the three subgraphs.
    ///
    /// A backbone that is not a vertex cover of `g` trips a debug
    /// assertion; in release builds the offending edges are filed into
    /// the `in-out` subgraph to keep the partition total, and counted
    /// into [`RestructuredSubgraphs::cover_violations`] so callers can
    /// detect the breach instead of silently consuming a wrong
    /// restructuring.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if an edge has neither endpoint in the
    /// backbone, i.e. if `b` is not a vertex cover of `g`.
    pub fn generate(g: &BipartiteGraph, b: &Backbone) -> Self {
        let mut out = RestructuredSubgraphs::default();
        let mut scratch = RecoupleScratch::default();
        Self::generate_into(g, b, &mut out, &mut scratch);
        out
    }

    /// Workspace variant of [`RestructuredSubgraphs::generate`]: the
    /// three subgraphs are rebuilt **in place** — their CSR and name
    /// storage reused through
    /// [`BipartiteGraph::rebuild_from_pairs`] — and the edge-partition
    /// buffers come from `scratch`, so regenerating subgraphs in a loop
    /// performs no heap allocation at steady state. Results are
    /// identical to the allocating path, including the release-mode
    /// cover-violation accounting.
    pub fn generate_into(
        g: &BipartiteGraph,
        b: &Backbone,
        out: &mut RestructuredSubgraphs,
        scratch: &mut RecoupleScratch,
    ) {
        let RecoupleScratch {
            in_out,
            in_in,
            out_in,
            cursor,
        } = scratch;
        in_out.clear();
        in_in.clear();
        out_in.clear();
        let mut violations = 0usize;
        for e in g.iter_edges() {
            let (s, d) = (e.src.raw(), e.dst.raw());
            match (b.src_in(s as usize), b.dst_in(d as usize)) {
                (true, false) => in_out.push((s, d)),
                (true, true) => in_in.push((s, d)),
                (false, true) => out_in.push((s, d)),
                (false, false) => {
                    debug_assert!(false, "backbone is not a vertex cover: edge {e}");
                    // Release-mode fallback keeps the partition total;
                    // the breach is surfaced through cover_violations.
                    violations += 1;
                    in_out.push((s, d));
                }
            }
        }
        for (slot, name, pairs) in [
            (0, "in-out", &*in_out),
            (1, "in-in", &*in_in),
            (2, "out-in", &*out_in),
        ] {
            out.subgraphs[slot]
                .rebuild_from_pairs(
                    format_args!("{}/{}", g.name(), name),
                    g.src_count(),
                    g.dst_count(),
                    pairs,
                    cursor,
                )
                .expect("edges come from a validated graph");
        }
        out.cover_violations = violations;
    }

    /// Number of edges whose endpoints were **both** outside the
    /// backbone — vertex-cover violations. Always 0 for a valid
    /// backbone; nonzero means the restructuring consumed a non-cover
    /// backbone and mis-filed these edges into the `in-out` subgraph
    /// (debug builds assert instead).
    pub fn cover_violations(&self) -> usize {
        self.cover_violations
    }

    /// The subgraph of a given kind.
    pub fn get(&self, kind: SubgraphKind) -> &BipartiteGraph {
        match kind {
            SubgraphKind::InOut => &self.subgraphs[0],
            SubgraphKind::InIn => &self.subgraphs[1],
            SubgraphKind::OutIn => &self.subgraphs[2],
        }
    }

    /// Iterates `(kind, subgraph)` pairs in pipeline emission order.
    pub fn iter(&self) -> impl Iterator<Item = (SubgraphKind, &BipartiteGraph)> {
        SubgraphKind::ALL.iter().map(move |&k| (k, self.get(k)))
    }

    /// Total edges across the three subgraphs (equals the original graph's
    /// edge count — the partition property).
    pub fn total_edges(&self) -> usize {
        self.subgraphs.iter().map(|g| g.edge_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::BackboneStrategy;
    use crate::matching::hopcroft_karp;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn setup(seed: u64) -> (BipartiteGraph, Backbone) {
        let g = PowerLawConfig::new(40, 40, 160)
            .dst_alpha(0.9)
            .generate("t", seed);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        (g, b)
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let (g, b) = setup(1);
        let p = VertexPartition::from_backbone(&g, &b);
        let touched_src = (0..g.src_count()).filter(|&s| g.out_degree(s) > 0).count();
        let touched_dst = (0..g.dst_count()).filter(|&d| g.in_degree(d) > 0).count();
        assert_eq!(p.src_in().len() + p.src_out().len(), touched_src);
        assert_eq!(p.dst_in().len() + p.dst_out().len(), touched_dst);
        for &s in p.src_in() {
            assert!(p.src_out().binary_search(&s).is_err());
        }
    }

    #[test]
    fn classify_matches_membership() {
        let (g, b) = setup(2);
        let p = VertexPartition::from_backbone(&g, &b);
        for s in 0..g.src_count() as u32 {
            match p.classify_src(s) {
                Some(VertexClass::SrcIn) => assert!(b.src_in(s as usize)),
                Some(VertexClass::SrcOut) => assert!(!b.src_in(s as usize)),
                None => assert_eq!(g.out_degree(s as usize), 0),
                other => panic!("source classified as {other:?}"),
            }
        }
        for d in 0..g.dst_count() as u32 {
            match p.classify_dst(d) {
                Some(VertexClass::DstIn) => assert!(b.dst_in(d as usize)),
                Some(VertexClass::DstOut) => assert!(!b.dst_in(d as usize)),
                None => assert_eq!(g.in_degree(d as usize), 0),
                other => panic!("destination classified as {other:?}"),
            }
        }
    }

    #[test]
    fn subgraphs_partition_the_edge_set() {
        for seed in 0..10 {
            let (g, b) = setup(seed);
            let r = RestructuredSubgraphs::generate(&g, &b);
            assert_eq!(r.total_edges(), g.edge_count(), "seed {seed}");
            // every original edge appears in exactly one subgraph
            let mut all: Vec<(u32, u32)> = r
                .iter()
                .flat_map(|(_, sg)| sg.iter_edges().map(|e| (e.src.raw(), e.dst.raw())))
                .collect();
            all.sort_unstable();
            let mut orig: Vec<(u32, u32)> =
                g.iter_edges().map(|e| (e.src.raw(), e.dst.raw())).collect();
            orig.sort_unstable();
            assert_eq!(all, orig, "seed {seed}");
        }
    }

    #[test]
    fn subgraph_classes_respect_backbone() {
        let (g, b) = setup(3);
        let r = RestructuredSubgraphs::generate(&g, &b);
        for e in r.get(SubgraphKind::InOut).iter_edges() {
            assert!(b.src_in(e.src.index()) && !b.dst_in(e.dst.index()));
        }
        for e in r.get(SubgraphKind::InIn).iter_edges() {
            assert!(b.src_in(e.src.index()) && b.dst_in(e.dst.index()));
        }
        for e in r.get(SubgraphKind::OutIn).iter_edges() {
            assert!(!b.src_in(e.src.index()) && b.dst_in(e.dst.index()));
        }
    }

    #[test]
    fn valid_backbones_report_zero_cover_violations() {
        for seed in 0..5 {
            let (g, b) = setup(seed);
            let r = RestructuredSubgraphs::generate(&g, &b);
            assert_eq!(r.cover_violations(), 0, "seed {seed}");
        }
    }

    /// The release-mode fallback: a non-cover backbone mis-files edges
    /// into `in-out` but now *counts* them, so callers can detect the
    /// breach without the debug assertion. (In debug builds the
    /// assertion fires first, so this test only runs in release.)
    #[cfg(not(debug_assertions))]
    #[test]
    fn non_cover_backbone_is_counted_not_silent() {
        use crate::matching::Matching;
        // An all-out backbone selected for an edgeless graph…
        let empty = BipartiteGraph::from_pairs("e", 2, 2, &[]).unwrap();
        let m = Matching::empty(2, 2);
        let b = Backbone::select(&empty, &m, BackboneStrategy::Paper);
        assert!(b.is_empty());
        // …misses every edge of a non-empty graph of the same shape.
        let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (1, 1)]).unwrap();
        let r = RestructuredSubgraphs::generate(&g, &b);
        assert_eq!(r.cover_violations(), 2);
        assert_eq!(r.total_edges(), g.edge_count(), "partition stays total");
        assert_eq!(r.get(SubgraphKind::InOut).edge_count(), 2);
    }

    #[test]
    fn kind_display_and_order() {
        assert_eq!(SubgraphKind::ALL.len(), 3);
        assert_eq!(SubgraphKind::InOut.to_string(), "src_in x dst_out");
        assert_eq!(SubgraphKind::ALL[0], SubgraphKind::OutIn);
    }
}
