//! # gdr-core — graph decoupling and recoupling
//!
//! The primary contribution of *GDR-HGNN* (Xue et al., DAC 2024) as a pure
//! algorithm library:
//!
//! * [`matching`] — graph **decoupling**: maximum bipartite matching via
//!   the paper's FIFO algorithm (Algorithm 1), Hopcroft-Karp, and a greedy
//!   baseline;
//! * [`backbone`] — graph **recoupling** step 1: backbone (vertex cover)
//!   selection (Algorithm 2, exact König, greedy-degree baseline);
//! * [`recouple`] — recoupling step 2: the `Src/Dst × in/out` vertex
//!   partition and the three-subgraph generation (`GenerateGraph`);
//! * [`schedule`] — edge schedules, including the locality-friendly
//!   restructured order and the baselines it is compared against;
//! * [`locality`] — fully-associative LRU analysis quantifying buffer
//!   thrashing per schedule;
//! * [`restructure`] — the end-to-end [`restructure::Restructurer`]
//!   driver, including the paper's recursive sub-subgraph extension;
//! * [`workspace`] — the reusable [`workspace::Workspace`] scratch arena
//!   behind the zero-allocation `_into`/`_with` variants of all of the
//!   above.
//!
//! # Examples
//!
//! Restructure a skewed semantic graph and measure the thrashing
//! reduction:
//!
//! ```
//! use gdr_hetgraph::gen::PowerLawConfig;
//! use gdr_core::restructure::Restructurer;
//! use gdr_core::schedule::EdgeSchedule;
//! use gdr_core::locality::simulate_lru;
//!
//! let g = PowerLawConfig::new(500, 500, 4000).dst_alpha(0.9).generate("toy", 1);
//! let restructured = Restructurer::new().restructure(&g);
//!
//! let cap = 128; // on-chip buffer capacity in feature vectors
//! let before = simulate_lru(&g, &EdgeSchedule::dst_major(&g), cap);
//! let after = simulate_lru(&g, restructured.schedule(), cap);
//! assert!(after.misses() <= before.misses());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backbone;
pub mod locality;
pub mod matching;
pub mod recouple;
pub mod restructure;
pub mod schedule;
pub mod workspace;

pub use backbone::{Backbone, BackboneStrategy};
pub use matching::Matching;
pub use recouple::{RestructuredSubgraphs, SubgraphKind, VertexPartition};
pub use restructure::{MatcherKind, Restructured, Restructurer};
pub use schedule::EdgeSchedule;
pub use workspace::{MatchScratch, RecoupleScratch, Workspace};
