//! Fast locality analysis of edge schedules.
//!
//! This module answers "how much buffer thrashing does a schedule cause?"
//! with an idealized fully-associative LRU feature buffer — the
//! upper-bound of what any on-chip buffer organization can achieve. The
//! cycle-accurate set-associative model lives in `gdr-memsim`; this one is
//! used by the motivation experiments and the quick ablations because it
//! is allocation-light and exact.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use gdr_hetgraph::{BipartiteGraph, GdrError, GdrResult};

use crate::schedule::EdgeSchedule;

/// Which feature class an access touches.
///
/// The NA stage reads *source features* (the neighbor being aggregated)
/// and reads-modifies-writes *destination partial sums*; both compete for
/// the same on-chip buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// Source feature vector read.
    Src,
    /// Destination partial-sum accumulator access.
    Dst,
}

/// Result of simulating a schedule against a fully-associative LRU buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalityReport {
    name: String,
    capacity: usize,
    accesses: usize,
    src_misses: usize,
    dst_misses: usize,
    fetches_src: Vec<u32>,
    fetches_dst: Vec<u32>,
}

impl LocalityReport {
    /// Schedule name this report was computed for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Buffer capacity used, in resident feature vectors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total accesses (2 per edge: one source read, one destination RMW).
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    /// Total buffer misses (each miss is a DRAM feature fetch).
    pub fn misses(&self) -> usize {
        self.src_misses + self.dst_misses
    }

    /// Source-side misses.
    pub fn src_misses(&self) -> usize {
        self.src_misses
    }

    /// Destination-side misses.
    pub fn dst_misses(&self) -> usize {
        self.dst_misses
    }

    /// Miss rate over all accesses (0 for an empty schedule).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// The *replacement times* of a vertex feature: how many times it was
    /// re-fetched after eviction (`fetches - 1`). Returns per-source and
    /// per-destination tables (Fig. 2's raw data).
    pub fn replacement_times(&self) -> (Vec<u32>, Vec<u32>) {
        let dec = |v: &[u32]| v.iter().map(|&f| f.saturating_sub(1)).collect();
        (dec(&self.fetches_src), dec(&self.fetches_dst))
    }

    /// Fig. 2: for replacement-time buckets `1..=cap` (last bucket
    /// accumulating `>= cap`), returns `(ratio_of_vertices, ratio_of_accesses)`
    /// in percent, over vertices that were replaced at least once.
    pub fn replacement_histogram(&self, cap: usize) -> Vec<(f64, f64)> {
        let (rs, rd) = self.replacement_times();
        let all: Vec<u32> = rs.into_iter().chain(rd).collect();
        let total_vertices = all.iter().filter(|&&r| r > 0).count();
        let total_extra_accesses: u64 = all.iter().map(|&r| r as u64).sum();
        let mut out = vec![(0.0, 0.0); cap];
        if total_vertices == 0 || total_extra_accesses == 0 {
            return out;
        }
        for &r in &all {
            if r == 0 {
                continue;
            }
            let b = (r as usize).min(cap) - 1;
            out[b].0 += 1.0;
            out[b].1 += r as f64;
        }
        for (v, a) in &mut out {
            *v = *v / total_vertices as f64 * 100.0;
            *a = *a / total_extra_accesses as f64 * 100.0;
        }
        out
    }
}

/// Simulates `schedule` against a fully-associative LRU buffer holding
/// `capacity` feature vectors (sources and destination partial sums share
/// it, as in HiHGNN's NA buffer).
///
/// # Panics
///
/// Panics if `capacity == 0`. Use [`try_simulate_lru`] for a fallible
/// variant.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::BipartiteGraph;
/// use gdr_core::schedule::EdgeSchedule;
/// use gdr_core::locality::simulate_lru;
/// let g = BipartiteGraph::from_pairs("g", 4, 4, &[(0, 0), (1, 0), (2, 1), (3, 1)])?;
/// let rep = simulate_lru(&g, &EdgeSchedule::dst_major(&g), 16);
/// // big enough buffer -> cold misses only: 4 sources + 2 destinations
/// assert_eq!(rep.misses(), 6);
/// # Ok::<(), gdr_hetgraph::GraphError>(())
/// ```
pub fn simulate_lru(
    g: &BipartiteGraph,
    schedule: &EdgeSchedule,
    capacity: usize,
) -> LocalityReport {
    try_simulate_lru(g, schedule, capacity).expect("buffer capacity must be positive")
}

/// Fallible [`simulate_lru`].
///
/// # Errors
///
/// Returns [`GdrError::InvalidConfig`] if `capacity == 0` — a zero-entry
/// buffer cannot hold the edge under process, so the model is undefined.
pub fn try_simulate_lru(
    g: &BipartiteGraph,
    schedule: &EdgeSchedule,
    capacity: usize,
) -> GdrResult<LocalityReport> {
    try_simulate_lru_with(&mut LruScratch::default(), g, schedule, capacity)
}

/// Pooled state for [`try_simulate_lru_with`]: the resident map and the
/// lazy-deletion recency heap, `clear()`ed per simulation but never
/// dropped. Thread one through a long-lived
/// [`Workspace`](crate::workspace::Workspace) (its `lru_scratch` field)
/// and repeated locality analyses stop paying the per-call map and heap
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct LruScratch {
    /// key -> last-use stamp of every resident feature.
    resident: HashMap<(Side, u32), u64>,
    /// Min-heap of `(stamp, key)` touches; entries whose stamp no longer
    /// matches `resident[key]` are stale and skipped at eviction time.
    heap: BinaryHeap<Reverse<(u64, Side, u32)>>,
}

/// [`try_simulate_lru`] over caller-pooled scratch. Results are
/// identical to the transient-state path for every schedule and
/// capacity (the reuse-vs-fresh property net pins this); only the
/// allocation behavior differs.
///
/// # Errors
///
/// Returns [`GdrError::InvalidConfig`] if `capacity == 0`.
pub fn try_simulate_lru_with(
    scratch: &mut LruScratch,
    g: &BipartiteGraph,
    schedule: &EdgeSchedule,
    capacity: usize,
) -> GdrResult<LocalityReport> {
    if capacity == 0 {
        return Err(GdrError::invalid_config(
            "capacity",
            "buffer capacity must be positive",
        ));
    }
    let mut stamp: u64 = 0;
    scratch.resident.clear();
    scratch.heap.clear();
    let mut fetches_src = vec![0u32; g.src_count()];
    let mut fetches_dst = vec![0u32; g.dst_count()];
    let mut src_misses = 0usize;
    let mut dst_misses = 0usize;

    let mut touch = |key: (Side, u32),
                     resident: &mut HashMap<(Side, u32), u64>,
                     heap: &mut BinaryHeap<Reverse<(u64, Side, u32)>>,
                     miss_ctr: &mut usize,
                     fetch_ctr: &mut u32| {
        stamp += 1;
        if resident.insert(key, stamp).is_some() {
            // hit: the old heap entry goes stale, the new stamp wins
            heap.push(Reverse((stamp, key.0, key.1)));
            return;
        }
        // miss: fetch, evict if over capacity
        *miss_ctr += 1;
        *fetch_ctr += 1;
        heap.push(Reverse((stamp, key.0, key.1)));
        if resident.len() > capacity {
            // pop stale entries until a current one surfaces — that is
            // the genuinely least-recently-used resident feature
            loop {
                let Reverse((s, side, id)) = heap.pop().expect("buffer non-empty");
                let victim = (side, id);
                if resident.get(&victim) == Some(&s) {
                    resident.remove(&victim);
                    break;
                }
            }
        }
    };

    for e in schedule.iter() {
        touch(
            (Side::Src, e.src.raw()),
            &mut scratch.resident,
            &mut scratch.heap,
            &mut src_misses,
            &mut fetches_src[e.src.index()],
        );
        touch(
            (Side::Dst, e.dst.raw()),
            &mut scratch.resident,
            &mut scratch.heap,
            &mut dst_misses,
            &mut fetches_dst[e.dst.index()],
        );
    }

    Ok(LocalityReport {
        name: schedule.name().to_string(),
        capacity,
        accesses: schedule.len() * 2,
        src_misses,
        dst_misses,
        fetches_src,
        fetches_dst,
    })
}

/// Sweeps buffer capacities and returns `(capacity, misses)` points — the
/// working-set curve of a schedule.
pub fn miss_curve(
    g: &BipartiteGraph,
    schedule: &EdgeSchedule,
    capacities: &[usize],
) -> Vec<(usize, usize)> {
    capacities
        .iter()
        .map(|&c| (c, simulate_lru(g, schedule, c).misses()))
        .collect()
}

/// Lower bound on misses for any schedule and any buffer: each touched
/// vertex must be fetched at least once (compulsory misses).
pub fn compulsory_misses(g: &BipartiteGraph) -> usize {
    let src = (0..g.src_count()).filter(|&s| g.out_degree(s) > 0).count();
    let dst = (0..g.dst_count()).filter(|&d| g.in_degree(d) > 0).count();
    src + dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{Backbone, BackboneStrategy};
    use crate::matching::hopcroft_karp;
    use crate::recouple::RestructuredSubgraphs;
    use gdr_hetgraph::gen::PowerLawConfig;

    #[test]
    fn infinite_buffer_gives_compulsory_misses() {
        let g = PowerLawConfig::new(50, 50, 200).generate("g", 1);
        for sched in [
            EdgeSchedule::dst_major(&g),
            EdgeSchedule::random(&g, 3),
            EdgeSchedule::src_major(&g),
        ] {
            let rep = simulate_lru(&g, &sched, 1_000_000);
            assert_eq!(rep.misses(), compulsory_misses(&g), "{}", sched.name());
        }
    }

    #[test]
    fn misses_monotone_in_capacity() {
        // LRU has the stack property: misses never increase with capacity.
        let g = PowerLawConfig::new(100, 100, 800)
            .dst_alpha(0.9)
            .generate("g", 2);
        let sched = EdgeSchedule::random(&g, 9);
        let curve = miss_curve(&g, &sched, &[4, 8, 16, 32, 64, 128, 256]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "misses increased: {curve:?}");
        }
    }

    #[test]
    fn restructured_beats_dst_major_under_pressure() {
        let g = PowerLawConfig::new(400, 400, 3200)
            .dst_alpha(0.9)
            .generate("g", 3);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        let r = RestructuredSubgraphs::generate(&g, &b);
        let cap = 96; // far below the ~800-vertex working set
        let base = simulate_lru(&g, &EdgeSchedule::dst_major(&g), cap);
        let gdr = simulate_lru(&g, &EdgeSchedule::restructured(&r), cap);
        assert!(
            gdr.misses() < base.misses(),
            "restructured {} vs dst-major {}",
            gdr.misses(),
            base.misses()
        );
    }

    #[test]
    fn replacement_histogram_percentages_sum() {
        let g = PowerLawConfig::new(60, 60, 600)
            .dst_alpha(1.0)
            .generate("g", 4);
        let rep = simulate_lru(&g, &EdgeSchedule::random(&g, 1), 16);
        let hist = rep.replacement_histogram(8);
        assert_eq!(hist.len(), 8);
        let v_sum: f64 = hist.iter().map(|h| h.0).sum();
        let a_sum: f64 = hist.iter().map(|h| h.1).sum();
        assert!((v_sum - 100.0).abs() < 1e-9, "vertex ratios sum to {v_sum}");
        assert!((a_sum - 100.0).abs() < 1e-9, "access ratios sum to {a_sum}");
    }

    #[test]
    fn miss_rate_and_accessors() {
        let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (1, 1)]).unwrap();
        let rep = simulate_lru(&g, &EdgeSchedule::dst_major(&g), 8);
        assert_eq!(rep.accesses(), 4);
        assert_eq!(rep.misses(), 4); // all compulsory
        assert_eq!(rep.miss_rate(), 1.0);
        assert_eq!(rep.capacity(), 8);
        assert_eq!(rep.name(), "dst-major");
        assert_eq!(rep.src_misses() + rep.dst_misses(), rep.misses());
    }

    #[test]
    fn empty_schedule() {
        let g = BipartiteGraph::from_pairs("e", 2, 2, &[]).unwrap();
        let rep = simulate_lru(&g, &EdgeSchedule::dst_major(&g), 4);
        assert_eq!(rep.miss_rate(), 0.0);
        assert_eq!(rep.misses(), 0);
        let hist = rep.replacement_histogram(8);
        assert!(hist.iter().all(|&(v, a)| v == 0.0 && a == 0.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let g = BipartiteGraph::from_pairs("g", 1, 1, &[(0, 0)]).unwrap();
        let _ = simulate_lru(&g, &EdgeSchedule::dst_major(&g), 0);
    }

    #[test]
    fn pooled_scratch_matches_fresh_simulation() {
        let mut scratch = LruScratch::default();
        for seed in 0..6 {
            let g = PowerLawConfig::new(80, 80, 640)
                .dst_alpha(0.8)
                .generate("g", seed);
            for cap in [4, 24, 96] {
                for sched in [EdgeSchedule::dst_major(&g), EdgeSchedule::random(&g, seed)] {
                    let pooled = try_simulate_lru_with(&mut scratch, &g, &sched, cap).unwrap();
                    let fresh = try_simulate_lru(&g, &sched, cap).unwrap();
                    assert_eq!(pooled, fresh, "seed {seed} cap {cap} {}", sched.name());
                }
            }
        }
    }
}
