//! Maximum bipartite matching engines (graph decoupling, paper §4.2).
//!
//! Graph decoupling "separates the original semantic graph into a set of
//! edges that do not share common vertices" — a maximum matching. Three
//! engines are provided:
//!
//! * [`fifo_matching`] — the paper's Algorithm 1: a FIFO-driven
//!   breadth-first augmenting search, the algorithm the Decoupler hardware
//!   executes (inspired by the Hungarian method).
//! * [`hopcroft_karp`] — the classic `O(E·√V)` phase algorithm, used as the
//!   reference oracle in tests.
//! * [`greedy_matching`] — one-pass maximal (not maximum) matching, the
//!   quality baseline for ablations.

use gdr_hetgraph::BipartiteGraph;

use crate::workspace::MatchScratch;

/// A matching over a bipartite semantic graph.
///
/// Invariant: `pair_src[s] == Some(d)` iff `pair_dst[d] == Some(s)`.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::BipartiteGraph;
/// use gdr_core::matching::hopcroft_karp;
/// let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (0, 1), (1, 0)])?;
/// let m = hopcroft_karp(&g);
/// assert_eq!(m.size(), 2);
/// assert!(m.is_valid(&g));
/// # Ok::<(), gdr_hetgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Matching {
    pair_src: Vec<Option<u32>>,
    pair_dst: Vec<Option<u32>>,
    size: usize,
}

impl Matching {
    /// Creates an empty matching over `src_count` sources and `dst_count`
    /// destinations.
    pub fn empty(src_count: usize, dst_count: usize) -> Self {
        Self {
            pair_src: vec![None; src_count],
            pair_dst: vec![None; dst_count],
            size: 0,
        }
    }

    /// Resets to an empty matching over new vertex counts, reusing the
    /// assignment-table storage — the workspace path of
    /// [`Matching::empty`]. Equivalent to `*self = Matching::empty(..)`
    /// without the allocation.
    pub fn reset(&mut self, src_count: usize, dst_count: usize) {
        self.pair_src.clear();
        self.pair_src.resize(src_count, None);
        self.pair_dst.clear();
        self.pair_dst.resize(dst_count, None);
        self.size = 0;
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The destination matched to source `s`, if any.
    pub fn match_of_src(&self, s: usize) -> Option<u32> {
        self.pair_src[s]
    }

    /// The source matched to destination `d`, if any.
    pub fn match_of_dst(&self, d: usize) -> Option<u32> {
        self.pair_dst[d]
    }

    /// Whether source `s` is matched.
    pub fn src_matched(&self, s: usize) -> bool {
        self.pair_src[s].is_some()
    }

    /// Whether destination `d` is matched.
    pub fn dst_matched(&self, d: usize) -> bool {
        self.pair_dst[d].is_some()
    }

    /// Source-side assignment table (`pair_src[s]` = matched destination).
    pub fn pair_src(&self) -> &[Option<u32>] {
        &self.pair_src
    }

    /// Destination-side assignment table.
    pub fn pair_dst(&self) -> &[Option<u32>] {
        &self.pair_dst
    }

    /// Matched `(src, dst)` pairs in ascending source order.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        self.pair_src
            .iter()
            .enumerate()
            .filter_map(|(s, d)| d.map(|d| (s as u32, d)))
            .collect()
    }

    /// Records the pair `(s, d)`, unlinking any previous partners.
    pub fn link(&mut self, s: u32, d: u32) {
        if let Some(old_d) = self.pair_src[s as usize] {
            self.pair_dst[old_d as usize] = None;
            self.size -= 1;
        }
        if let Some(old_s) = self.pair_dst[d as usize] {
            self.pair_src[old_s as usize] = None;
            self.size -= 1;
        }
        self.pair_src[s as usize] = Some(d);
        self.pair_dst[d as usize] = Some(s);
        self.size += 1;
    }

    /// Checks the structural invariants against a graph: symmetry, and
    /// every matched pair is an actual edge.
    pub fn is_valid(&self, g: &BipartiteGraph) -> bool {
        if self.pair_src.len() != g.src_count() || self.pair_dst.len() != g.dst_count() {
            return false;
        }
        let mut count = 0;
        for (s, d) in self.pair_src.iter().enumerate() {
            if let Some(d) = *d {
                if self.pair_dst[d as usize] != Some(s as u32) {
                    return false;
                }
                if !g.out_csr().contains(s as u32, d) {
                    return false;
                }
                count += 1;
            }
        }
        for (d, s) in self.pair_dst.iter().enumerate() {
            if let Some(s) = *s {
                if self.pair_src[s as usize] != Some(d as u32) {
                    return false;
                }
            }
        }
        count == self.size
    }

    /// Checks maximality: no edge has both endpoints unmatched.
    pub fn is_maximal(&self, g: &BipartiteGraph) -> bool {
        g.iter_edges()
            .all(|e| self.src_matched(e.src.index()) || self.dst_matched(e.dst.index()))
    }
}

/// One-pass greedy maximal matching: scan edges source-major and link the
/// first free pair seen. Maximal but in general only a 1/2-approximation
/// of maximum. Baseline for the decoupling-quality ablation.
pub fn greedy_matching(g: &BipartiteGraph) -> Matching {
    let mut m = Matching::default();
    greedy_matching_into(g, &mut m);
    m
}

/// Workspace variant of [`greedy_matching`]: the matching is rebuilt in
/// `out`, reusing its assignment-table storage.
pub fn greedy_matching_into(g: &BipartiteGraph, out: &mut Matching) {
    out.reset(g.src_count(), g.dst_count());
    for s in 0..g.src_count() {
        if out.src_matched(s) {
            continue;
        }
        for &d in g.out_neighbors(s) {
            if !out.dst_matched(d as usize) {
                out.link(s as u32, d);
                break;
            }
        }
    }
}

/// The paper's Algorithm 1: FIFO-driven augmenting search.
///
/// For each unmatched source the engine runs a breadth-first alternating
/// search through a `Search_List` FIFO; when an unmatched destination is
/// found the path is augmented by walking parent pointers (the hardware
/// realizes these as per-destination `Matching_FIFO`s, see
/// `gdr-frontend`). Every augmentation grows the matching by one, and BFS
/// finds an augmenting path whenever one exists, so the result is a
/// **maximum** matching (property-tested against [`hopcroft_karp`]).
///
/// Returns the matching together with the number of vertex-expansion steps
/// performed (the work measure the Decoupler's cycle model consumes).
pub fn fifo_matching_with_stats(g: &BipartiteGraph) -> (Matching, DecouplingStats) {
    let mut m = Matching::default();
    let mut scratch = MatchScratch::default();
    let stats = fifo_matching_into(g, &mut m, &mut scratch);
    (m, stats)
}

/// Workspace variant of [`fifo_matching_with_stats`]: the matching is
/// rebuilt in `out` and every FIFO/bitmap comes from `scratch`, so a
/// caller looping over graphs performs no heap allocation once the
/// buffers have grown to the largest graph seen. Results are identical
/// to the allocating path.
pub fn fifo_matching_into(
    g: &BipartiteGraph,
    out: &mut Matching,
    scratch: &mut MatchScratch,
) -> DecouplingStats {
    let n_src = g.src_count();
    let n_dst = g.dst_count();
    out.reset(n_src, n_dst);
    let m = out;
    let mut stats = DecouplingStats::default();

    // Per-destination "parent" source of the current BFS tree, i.e. the
    // content of Matching_FIFO[v] in hardware.
    let MatchScratch {
        parent_of_dst,
        visited_dst,
        search_list,
        ..
    } = scratch;
    parent_of_dst.clear();
    parent_of_dst.resize(n_dst, u32::MAX);
    visited_dst.clear();
    visited_dst.resize(n_dst, u32::MAX); // epoch-tagged Visited Bm.

    for root in 0..n_src as u32 {
        if m.src_matched(root as usize) || g.out_degree(root as usize) == 0 {
            continue;
        }
        stats.searches += 1;
        search_list.clear();
        search_list.push_back(root);
        let epoch = root;

        'bfs: while let Some(u) = search_list.pop_front() {
            stats.expansions += 1;
            for &v in g.out_neighbors(u as usize) {
                stats.edge_probes += 1;
                if visited_dst[v as usize] == epoch {
                    continue; // line 9-11: v already visited this epoch
                }
                visited_dst[v as usize] = epoch;
                parent_of_dst[v as usize] = u; // line 12: push u to Matching_FIFO[v]
                if !m.dst_matched(v as usize) {
                    // lines 13-19: augment along parent pointers
                    let mut d = v;
                    loop {
                        let s = parent_of_dst[d as usize];
                        let prev = m.match_of_src(s as usize);
                        m.link(s, d);
                        stats.augment_steps += 1;
                        match prev {
                            Some(pd) => d = pd,
                            None => break,
                        }
                    }
                    break 'bfs;
                } else {
                    // lines 22-26: enqueue the source currently matched to v
                    let owner = m.match_of_dst(v as usize).expect("checked matched");
                    search_list.push_back(owner);
                }
            }
        }
    }
    stats
}

/// Convenience wrapper over [`fifo_matching_with_stats`] discarding stats.
pub fn fifo_matching(g: &BipartiteGraph) -> Matching {
    fifo_matching_with_stats(g).0
}

/// Work counters of one decoupling run, consumed by the Decoupler cycle
/// model and by EXPERIMENTS.md's complexity validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecouplingStats {
    /// Augmenting searches started (one per initially-unmatched source).
    pub searches: usize,
    /// Vertices popped from the Search_List FIFO.
    pub expansions: usize,
    /// Edges probed during expansion.
    pub edge_probes: usize,
    /// Parent-pointer augmentation steps.
    pub augment_steps: usize,
}

/// Work counters of a phase-based (Hopcroft-Karp) matching run, used by
/// the Decoupler's cycle model: the hardware searches many sources
/// concurrently, which is exactly a bulk-synchronous BFS phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// BFS/DFS phases executed.
    pub phases: usize,
    /// Edge probes across all BFS sweeps.
    pub bfs_probes: usize,
    /// DFS augmentation steps.
    pub dfs_steps: usize,
}

/// Hopcroft-Karp maximum matching (`O(E·√V)`), the reference oracle.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    hopcroft_karp_with_stats(g).0
}

/// [`hopcroft_karp`] with work counters (see [`PhaseStats`]).
pub fn hopcroft_karp_with_stats(g: &BipartiteGraph) -> (Matching, PhaseStats) {
    let mut m = Matching::default();
    let mut scratch = MatchScratch::default();
    let stats = hopcroft_karp_into(g, &mut m, &mut scratch);
    (m, stats)
}

/// Workspace variant of [`hopcroft_karp_with_stats`]: the matching is
/// rebuilt in `out`, BFS layers and queues come from `scratch`. Results
/// are identical to the allocating path.
pub fn hopcroft_karp_into(
    g: &BipartiteGraph,
    out: &mut Matching,
    scratch: &mut MatchScratch,
) -> PhaseStats {
    let n_src = g.src_count();
    let n_dst = g.dst_count();
    out.reset(n_src, n_dst);
    let m = out;
    let mut stats = PhaseStats::default();
    const INF: u32 = u32::MAX;
    let MatchScratch { dist, queue, .. } = scratch;
    dist.clear();
    dist.resize(n_src, INF);

    loop {
        // BFS phase: layer the graph from free sources.
        stats.phases += 1;
        queue.clear();
        let mut found_free_dst = false;
        for (s, slot) in dist.iter_mut().enumerate() {
            if !m.src_matched(s) {
                *slot = 0;
                queue.push_back(s as u32);
            } else {
                *slot = INF;
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u as usize) {
                stats.bfs_probes += 1;
                match m.match_of_dst(v as usize) {
                    None => found_free_dst = true,
                    Some(w) => {
                        if dist[w as usize] == INF {
                            dist[w as usize] = dist[u as usize] + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        if !found_free_dst {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn dfs(
            u: u32,
            g: &BipartiteGraph,
            m: &mut Matching,
            dist: &mut [u32],
            steps: &mut usize,
        ) -> bool {
            for i in 0..g.out_degree(u as usize) {
                let v = g.out_neighbors(u as usize)[i];
                *steps += 1;
                let next = m.match_of_dst(v as usize);
                let ok = match next {
                    None => true,
                    Some(w) => {
                        dist[w as usize] == dist[u as usize] + 1 && dfs(w, g, m, dist, steps)
                    }
                };
                if ok {
                    m.link(u, v);
                    dist[u as usize] = u32::MAX;
                    return true;
                }
            }
            dist[u as usize] = u32::MAX;
            false
        }
        let mut augmented = false;
        for s in 0..n_src as u32 {
            if !m.src_matched(s as usize)
                && dist[s as usize] == 0
                && dfs(s, g, m, dist, &mut stats.dfs_steps)
            {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn toy() -> BipartiteGraph {
        // Classic augmenting-path example: greedy can lock 0-0 and strand 1.
        BipartiteGraph::from_pairs("t", 2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap()
    }

    #[test]
    fn hopcroft_karp_finds_maximum() {
        let m = hopcroft_karp(&toy());
        assert_eq!(m.size(), 2);
        assert!(m.is_valid(&toy()));
        assert!(m.is_maximal(&toy()));
    }

    #[test]
    fn fifo_matching_matches_oracle_on_toy() {
        let m = fifo_matching(&toy());
        assert_eq!(m.size(), 2);
        assert!(m.is_valid(&toy()));
    }

    #[test]
    fn greedy_is_maximal_but_can_be_smaller() {
        // Build a graph where greedy strands a source:
        // s0: {d0, d1}, s1: {d0} -> greedy in source order picks (0,0), strands 1.
        let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        let gm = greedy_matching(&g);
        assert!(gm.is_valid(&g));
        assert!(gm.is_maximal(&g));
        assert!(gm.size() <= hopcroft_karp(&g).size());
    }

    #[test]
    fn all_engines_agree_on_random_graphs() {
        for seed in 0..10 {
            let g = PowerLawConfig::new(80, 60, 300)
                .dst_alpha(0.8)
                .generate("r", seed);
            let hk = hopcroft_karp(&g);
            let (ff, stats) = fifo_matching_with_stats(&g);
            assert!(hk.is_valid(&g), "hk invalid at seed {seed}");
            assert!(ff.is_valid(&g), "fifo invalid at seed {seed}");
            assert_eq!(ff.size(), hk.size(), "sizes differ at seed {seed}");
            assert!(ff.is_maximal(&g));
            assert!(stats.edge_probes >= g.edge_count().min(stats.expansions));
            let gm = greedy_matching(&g);
            assert!(gm.size() <= hk.size());
            assert!(2 * gm.size() >= hk.size(), "greedy below 1/2-approx");
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_pairs("e", 3, 3, &[]).unwrap();
        assert_eq!(hopcroft_karp(&g).size(), 0);
        assert_eq!(fifo_matching(&g).size(), 0);
        assert_eq!(greedy_matching(&g).size(), 0);
    }

    #[test]
    fn perfect_matching_case() {
        // complete bipartite K3,3 admits a perfect matching
        let mut pairs = vec![];
        for s in 0..3 {
            for d in 0..3 {
                pairs.push((s, d));
            }
        }
        let g = BipartiteGraph::from_pairs("k33", 3, 3, &pairs).unwrap();
        assert_eq!(hopcroft_karp(&g).size(), 3);
        assert_eq!(fifo_matching(&g).size(), 3);
    }

    #[test]
    fn link_relinks_cleanly() {
        let mut m = Matching::empty(2, 2);
        m.link(0, 0);
        assert_eq!(m.size(), 1);
        m.link(0, 1); // re-link source 0
        assert_eq!(m.size(), 1);
        assert_eq!(m.match_of_dst(0), None);
        assert_eq!(m.match_of_src(0), Some(1));
        m.link(1, 1); // steal destination 1
        assert_eq!(m.size(), 1);
        assert_eq!(m.match_of_src(0), None);
        m.link(0, 0);
        assert_eq!(m.size(), 2);
        assert_eq!(m.pairs(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn stats_scale_with_graph() {
        let g = PowerLawConfig::new(200, 200, 1000).generate("s", 3);
        let (_, st) = fifo_matching_with_stats(&g);
        assert!(st.searches > 0);
        assert!(st.expansions >= st.searches);
        assert!(st.augment_steps > 0);
    }
}
