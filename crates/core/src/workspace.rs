//! Reusable scratch arena for the restructuring hot path.
//!
//! The GDR-HGNN frontend restructures semantic graphs continuously —
//! one per accelerator execution, one per serving request batch — and
//! the naive implementation pays allocator traffic for every one of
//! them: fresh matching tables, BFS queues, partition FIFOs, and six
//! CSR arrays per graph. A [`Workspace`] owns all of that state once
//! and the `_into`/`_with` variants of the restructuring steps
//! ([`crate::matching::fifo_matching_into`],
//! [`crate::backbone::Backbone::select_into`],
//! [`crate::recouple::RestructuredSubgraphs::generate_into`],
//! [`crate::schedule::EdgeSchedule::restructured_into`],
//! [`crate::restructure::Restructurer::restructure_with`]) reuse it:
//! buffers are `clear()`ed, never dropped, and subgraph
//! [`BipartiteGraph`](gdr_hetgraph::BipartiteGraph)s are rebuilt in
//! place through
//! [`BipartiteGraph::rebuild_from_pairs`](gdr_hetgraph::BipartiteGraph::rebuild_from_pairs).
//! At steady state — once every buffer has grown to the largest graph
//! seen — a restructuring pass performs **zero heap allocation** for
//! its intermediates. Retained products are pooled too: DRAM request
//! logs draw from [`Workspace::take_request_log`] and return through
//! [`Workspace::recycle_request_log`], so replay-heavy callers (the
//! serving cost model re-measures every cell per harness) recycle the
//! log storage instead of reallocating it per replay; only an owned
//! schedule still allocates.
//!
//! Results are byte-identical to the allocating paths, which remain
//! available as thin wrappers constructing a transient workspace; a
//! 48-seed property net (`crates/core/tests/workspace_properties.rs`)
//! pins the equivalence over long reuse sequences with interleaved
//! graph sizes.
//!
//! # Examples
//!
//! ```
//! use gdr_core::restructure::Restructurer;
//! use gdr_core::workspace::Workspace;
//! use gdr_hetgraph::gen::PowerLawConfig;
//!
//! let r = Restructurer::new();
//! let mut ws = Workspace::new();
//! for seed in 0..4 {
//!     let g = PowerLawConfig::new(60, 60, 240).generate("g", seed);
//!     r.restructure_with(&mut ws, &g);
//!     assert_eq!(ws.subgraphs.total_edges(), g.edge_count());
//!     assert_eq!(ws.edges.len(), g.edge_count());
//! }
//! ```

use std::collections::VecDeque;

use gdr_hetgraph::Edge;
use gdr_memsim::buffer::{Replacement, SetAssocBuffer};
use gdr_memsim::hbm::MemRequest;

use crate::backbone::Backbone;
use crate::locality::LruScratch;
use crate::matching::Matching;
use crate::recouple::{RestructuredSubgraphs, VertexPartition};

/// Pooled set-associative buffer simulation state: one
/// [`SetAssocBuffer`] (kept across runs, [`SetAssocBuffer::flush`]ed
/// between them so its fetch counters can aggregate) plus a DRAM
/// request-log vector, both `clear()`ed, never dropped. The NA-engine
/// models drive their `_with` entry points through one of these instead
/// of constructing transient buffers per wave.
#[derive(Debug, Clone, Default)]
pub struct BufferScratch {
    /// Pooled buffer; `None` until the first [`BufferScratch::prepare`].
    pub buffer: Option<SetAssocBuffer>,
    /// Pooled DRAM request log (cleared per prepare, capacity kept).
    pub requests: Vec<MemRequest>,
}

impl BufferScratch {
    /// Readies the scratch for one simulation run at the given buffer
    /// geometry: the request log is cleared and the pooled buffer is
    /// flushed (residency and stats restart; **fetch counters are
    /// kept**, aggregating across runs until [`BufferScratch::reset`]).
    /// A geometry change reshapes the buffer in place, which resets the
    /// counters too.
    pub fn prepare(
        &mut self,
        capacity_lines: usize,
        ways: usize,
        policy: Replacement,
    ) -> (&mut SetAssocBuffer, &mut Vec<MemRequest>) {
        self.requests.clear();
        let sets = (capacity_lines / ways).max(1);
        match &mut self.buffer {
            Some(buf) if buf.sets() == sets && buf.ways() == ways && buf.policy() == policy => {
                buf.flush();
            }
            Some(buf) => buf.reshape(sets, ways, policy),
            None => self.buffer = Some(SetAssocBuffer::new(sets, ways, policy)),
        }
        (
            self.buffer.as_mut().expect("just ensured"),
            &mut self.requests,
        )
    }

    /// Clears everything, fetch counters included (capacity kept).
    pub fn reset(&mut self) {
        self.requests.clear();
        if let Some(buf) = &mut self.buffer {
            buf.reset();
        }
    }
}

/// Scratch consumed by the matching engines and backbone selection:
/// the decoupling FIFOs, epoch-tagged bitmaps, BFS layer arrays, and
/// alternating-reachability marks. Every buffer is length-reset per
/// graph but keeps its capacity.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-destination BFS parent — the `Matching_FIFO` head contents
    /// of the paper's Algorithm 1.
    pub parent_of_dst: Vec<u32>,
    /// Epoch-tagged visited bitmap over destinations (`Visited Bm.`).
    pub visited_dst: Vec<u32>,
    /// The `Search_List` FIFO driving the augmenting search.
    pub search_list: VecDeque<u32>,
    /// Per-source BFS layer distances (Hopcroft-Karp phases, also the
    /// hardware decoupler's bulk-synchronous search).
    pub dist: Vec<u32>,
    /// Shared BFS queue (phase layering, König alternating paths).
    pub queue: VecDeque<u32>,
    /// König `Z`-set membership, source side.
    pub z_src: Vec<bool>,
    /// König `Z`-set membership, destination side.
    pub z_dst: Vec<bool>,
}

/// Scratch consumed by three-subgraph generation: the per-class edge
/// partition buffers and the CSR counting-sort cursor used by the
/// in-place rebuilds.
#[derive(Debug, Clone, Default)]
pub struct RecoupleScratch {
    /// `Src_in × Dst_out` edge-partition buffer.
    pub in_out: Vec<(u32, u32)>,
    /// `Src_in × Dst_in` edge-partition buffer.
    pub in_in: Vec<(u32, u32)>,
    /// `Src_out × Dst_in` edge-partition buffer.
    pub out_in: Vec<(u32, u32)>,
    /// Counting-sort cursor for
    /// [`Csr`](gdr_hetgraph::Csr) rebuilds.
    pub cursor: Vec<u32>,
}

/// The reusable restructuring arena: output slots rebuilt in place
/// (matching, backbone, partition, subgraphs, schedule edges) plus the
/// scratch that produces them. One workspace serves any sequence of
/// graphs — sizes may differ wildly between calls; buffers resize
/// (upward allocations amortize away, downward resets are free).
///
/// Fields are public by design: the `_into` steps are usable à la carte
/// (an external engine like the hardware Decoupler model borrows
/// `matching` and `match_scratch` while leaving the rest untouched),
/// and disjoint field borrows keep the pipeline free of artificial
/// aliasing conflicts.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Matching output slot (graph decoupling result).
    pub matching: Matching,
    /// Matching-engine and backbone-selection scratch.
    pub match_scratch: MatchScratch,
    /// Backbone output slot (membership bitmaps rebuilt in place).
    pub backbone: Backbone,
    /// Four-way vertex partition output slot.
    pub partition: VertexPartition,
    /// Three-subgraph output slot; each
    /// [`BipartiteGraph`](gdr_hetgraph::BipartiteGraph) rebuilds its CSR
    /// storage in place.
    pub subgraphs: RestructuredSubgraphs,
    /// Edge-partition and CSR-rebuild scratch.
    pub recouple_scratch: RecoupleScratch,
    /// Schedule emission buffer: after
    /// [`Restructurer::restructure_with`](crate::restructure::Restructurer::restructure_with)
    /// this holds the restructured edge order.
    pub edges: Vec<Edge>,
    /// Retired DRAM request-log vectors, cleared but with their
    /// capacity intact. The frontend models take a log per stage
    /// through [`Workspace::take_request_log`] and callers that retire
    /// whole runs hand the storage back with
    /// [`Workspace::recycle_request_log`].
    pub request_pool: Vec<Vec<MemRequest>>,
    /// Pooled NA-buffer simulation state (set-associative buffer +
    /// request log) for the accelerator models' `_with` entry points.
    pub buffer_scratch: BufferScratch,
    /// Pooled fully-associative LRU analysis state for
    /// [`try_simulate_lru_with`](crate::locality::try_simulate_lru_with).
    pub lru_scratch: LruScratch,
}

impl Workspace {
    /// Creates an empty workspace. All buffers start unallocated and
    /// grow to the working-set size over the first graphs processed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty DRAM request-log vector: pooled storage when a
    /// retired log has been recycled, a fresh vector otherwise.
    pub fn take_request_log(&mut self) -> Vec<MemRequest> {
        self.request_pool.pop().unwrap_or_default()
    }

    /// Returns a retired request log to the pool: the contents are
    /// cleared, the capacity is kept for the next
    /// [`Workspace::take_request_log`].
    pub fn recycle_request_log(&mut self, mut log: Vec<MemRequest>) {
        log.clear();
        self.request_pool.push(log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::fifo_matching_into;
    use gdr_hetgraph::gen::PowerLawConfig;

    #[test]
    fn workspace_buffers_keep_capacity_across_graphs() {
        let mut ws = Workspace::new();
        let big = PowerLawConfig::new(300, 300, 1200).generate("b", 1);
        let small = PowerLawConfig::new(10, 10, 20).generate("s", 2);
        fifo_matching_into(&big, &mut ws.matching, &mut ws.match_scratch);
        let cap = ws.match_scratch.visited_dst.capacity();
        assert!(cap >= 300);
        fifo_matching_into(&small, &mut ws.matching, &mut ws.match_scratch);
        assert_eq!(
            ws.match_scratch.visited_dst.capacity(),
            cap,
            "shrinking graphs must not shed capacity"
        );
        assert_eq!(ws.matching.pair_src().len(), 10);
    }

    #[test]
    fn request_logs_recycle_with_their_capacity() {
        let mut ws = Workspace::new();
        // empty pool hands out a fresh vector
        let mut log = ws.take_request_log();
        assert!(log.is_empty() && log.capacity() == 0);
        log.extend((0..100).map(|i| MemRequest::read(i * 64, 64)));
        let cap = log.capacity();
        ws.recycle_request_log(log);
        // the recycled storage comes back cleared, capacity intact
        let reused = ws.take_request_log();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "recycling must keep capacity");
        // pool drained again: the next take is fresh
        assert_eq!(ws.take_request_log().capacity(), 0);
    }
}
