//! Edge schedules: the order in which the NA stage walks a semantic
//! graph's edges.
//!
//! Buffer thrashing is a property of the *schedule*, not of the graph: the
//! same edges walked in a locality-friendly order produce far fewer buffer
//! replacements. This module provides the baseline orders the paper
//! compares against (natural destination-major, random, degree-sorted, and
//! an I-GCN-style islandized order) plus the restructured order produced
//! by graph decoupling/recoupling.

use gdr_hetgraph::{BipartiteGraph, Edge, GdrError, GdrResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::recouple::{RestructuredSubgraphs, SubgraphKind};

/// A named total order over a semantic graph's edges.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::BipartiteGraph;
/// use gdr_core::schedule::EdgeSchedule;
/// let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (1, 0), (1, 1)])?;
/// let sched = EdgeSchedule::dst_major(&g);
/// assert_eq!(sched.len(), 3);
/// // destination-major: all of dst 0's edges first
/// assert_eq!(sched.edges()[0].dst.raw(), 0);
/// assert_eq!(sched.edges()[1].dst.raw(), 0);
/// # Ok::<(), gdr_hetgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSchedule {
    name: String,
    edges: Vec<Edge>,
}

impl EdgeSchedule {
    /// Creates a schedule from an explicit edge order.
    pub fn new(name: impl Into<String>, edges: Vec<Edge>) -> Self {
        Self {
            name: name.into(),
            edges,
        }
    }

    /// Natural aggregation order: for each destination in id order, all of
    /// its in-edges. This is how a vanilla NA engine walks the CSC — the
    /// *thrashing* baseline (destination partial sums have perfect
    /// locality, source features are effectively random).
    pub fn dst_major(g: &BipartiteGraph) -> Self {
        let mut edges = Vec::with_capacity(g.edge_count());
        for d in 0..g.dst_count() {
            for &s in g.in_neighbors(d) {
                edges.push(Edge::new(s, d as u32));
            }
        }
        Self::new("dst-major", edges)
    }

    /// Source-major order (scatter-style engines).
    pub fn src_major(g: &BipartiteGraph) -> Self {
        Self::new("src-major", g.iter_edges().collect())
    }

    /// Uniformly random edge order (worst case for both sides).
    pub fn random(g: &BipartiteGraph, seed: u64) -> Self {
        let mut edges: Vec<Edge> = g.iter_edges().collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
        Self::new("random", edges)
    }

    /// Destination-major order with destinations sorted by descending
    /// in-degree — the common software "sort by degree" locality fix.
    pub fn degree_sorted(g: &BipartiteGraph) -> Self {
        let mut order: Vec<u32> = (0..g.dst_count() as u32).collect();
        order.sort_by_key(|&d| (std::cmp::Reverse(g.in_degree(d as usize)), d));
        let mut edges = Vec::with_capacity(g.edge_count());
        for &d in &order {
            for &s in g.in_neighbors(d as usize) {
                edges.push(Edge::new(s, d));
            }
        }
        Self::new("degree-sorted", edges)
    }

    /// I-GCN-style islandized order: repeatedly pick the destination
    /// sharing the most sources with the recently-processed working set.
    /// On directed bipartite graphs this degrades toward plain
    /// degree-order (the observation in the paper's related-work section),
    /// which this baseline lets us measure.
    pub fn islandized(g: &BipartiteGraph) -> Self {
        let n_dst = g.dst_count();
        let mut picked = vec![false; n_dst];
        let mut affinity: Vec<u32> = vec![0; n_dst];
        let mut edges = Vec::with_capacity(g.edge_count());
        let by_degree: Vec<u32> = {
            let mut v: Vec<u32> = (0..n_dst as u32).collect();
            v.sort_by_key(|&d| (std::cmp::Reverse(g.in_degree(d as usize)), d));
            v
        };
        let mut cursor = 0usize;
        let mut remaining = (0..n_dst).filter(|&d| g.in_degree(d) > 0).count();
        while remaining > 0 {
            // Prefer the highest-affinity unpicked destination; fall back to
            // the highest-degree one when no affinity has accumulated.
            let best_aff = affinity
                .iter()
                .enumerate()
                .filter(|&(d, _)| !picked[d] && g.in_degree(d) > 0)
                .max_by_key(|&(d, &a)| (a, std::cmp::Reverse(d)))
                .map(|(d, &a)| (d, a));
            let d = match best_aff {
                Some((d, a)) if a > 0 => d,
                _ => {
                    while picked[by_degree[cursor] as usize]
                        || g.in_degree(by_degree[cursor] as usize) == 0
                    {
                        cursor += 1;
                    }
                    by_degree[cursor] as usize
                }
            };
            picked[d] = true;
            remaining -= 1;
            for &s in g.in_neighbors(d) {
                edges.push(Edge::new(s, d as u32));
                // loading s raises affinity of s's other destinations
                for &d2 in g.out_neighbors(s as usize) {
                    if !picked[d2 as usize] {
                        affinity[d2 as usize] += 1;
                    }
                }
            }
        }
        Self::new("islandized", edges)
    }

    /// The GDR-HGNN restructured order: subgraphs in pipeline order, each
    /// walked so that the **backbone side stays resident** and the
    /// non-backbone side streams:
    ///
    /// * `Src_out × Dst_in` — source-major (each streamed source loads once,
    ///   backbone destinations' partial sums stay on-chip),
    /// * `Src_in × Dst_in` — destination-major (backbone-internal),
    /// * `Src_in × Dst_out` — destination-major (each streamed destination
    ///   finishes in one burst, backbone sources stay on-chip).
    pub fn restructured(r: &RestructuredSubgraphs) -> Self {
        let mut edges = Vec::with_capacity(r.total_edges());
        Self::restructured_into(r, &mut edges);
        Self::new("restructured", edges)
    }

    /// Workspace variant of [`EdgeSchedule::restructured`]: emits the
    /// restructured order into a reusable buffer (cleared first) instead
    /// of allocating a schedule, for callers that re-emit schedules in a
    /// loop. The buffer contents equal
    /// `EdgeSchedule::restructured(r).edges()`.
    pub fn restructured_into(r: &RestructuredSubgraphs, out: &mut Vec<Edge>) {
        out.clear();
        out.reserve(r.total_edges());
        for (kind, sg) in r.iter() {
            match kind {
                SubgraphKind::OutIn => {
                    for s in 0..sg.src_count() {
                        for &d in sg.out_neighbors(s) {
                            out.push(Edge::new(s as u32, d));
                        }
                    }
                }
                SubgraphKind::InIn | SubgraphKind::InOut => {
                    for d in 0..sg.dst_count() {
                        for &s in sg.in_neighbors(d) {
                            out.push(Edge::new(s, d as u32));
                        }
                    }
                }
            }
        }
    }

    /// The GDR-HGNN restructured order walking each subgraph **backbone
    /// side major** — the order Algorithm 2's hardware naturally emits:
    /// the Backbone Searcher examines one backbone vertex at a time and
    /// pushes its non-backbone neighbors right behind it, so
    ///
    /// * `Src_out × Dst_in` — destination-major over the backbone
    ///   destinations (their accumulators get perfect locality; the
    ///   streamed sources are unmatched leftovers with low degree, ≈ one
    ///   use each),
    /// * `Src_in × Dst_in` — destination-major (backbone-internal),
    /// * `Src_in × Dst_out` — source-major over the backbone sources.
    pub fn restructured_backbone_major(r: &RestructuredSubgraphs) -> Self {
        let mut edges = Vec::with_capacity(r.total_edges());
        for (kind, sg) in r.iter() {
            match kind {
                SubgraphKind::OutIn | SubgraphKind::InIn => {
                    for d in 0..sg.dst_count() {
                        for &s in sg.in_neighbors(d) {
                            edges.push(Edge::new(s, d as u32));
                        }
                    }
                }
                SubgraphKind::InOut => {
                    for s in 0..sg.src_count() {
                        for &d in sg.out_neighbors(s) {
                            edges.push(Edge::new(s as u32, d));
                        }
                    }
                }
            }
        }
        Self::new("restructured-backbone-major", edges)
    }

    /// The GDR-HGNN restructured order with **capacity-aware tiling** —
    /// the paper's sub-subgraph extension (§4.3: the method "can be
    /// applied to subgraphs to generate smaller sub-subgraphs, thereby
    /// exploiting data locality in a smaller on-chip buffer"). The
    /// backbone side of each subgraph is split into tiles of
    /// `tile_vertices`; within a tile the streamed side is grouped, so
    /// the tile's backbone features stay resident even when the whole
    /// backbone exceeds the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `tile_vertices == 0`. Use
    /// [`EdgeSchedule::try_restructured_tiled`] for a fallible variant.
    pub fn restructured_tiled(r: &RestructuredSubgraphs, tile_vertices: usize) -> Self {
        Self::try_restructured_tiled(r, tile_vertices).expect("tile must hold at least one vertex")
    }

    /// Fallible [`EdgeSchedule::restructured_tiled`].
    ///
    /// # Errors
    ///
    /// Returns [`GdrError::InvalidConfig`] if `tile_vertices == 0`.
    pub fn try_restructured_tiled(
        r: &RestructuredSubgraphs,
        tile_vertices: usize,
    ) -> GdrResult<Self> {
        if tile_vertices == 0 {
            return Err(GdrError::invalid_config(
                "tile_vertices",
                "tile must hold at least one vertex",
            ));
        }
        let mut edges = Vec::with_capacity(r.total_edges());
        for (kind, sg) in r.iter() {
            match kind {
                // backbone on the destination side: tile destinations,
                // group by source within each tile
                SubgraphKind::OutIn | SubgraphKind::InIn => {
                    let touched: Vec<u32> = (0..sg.dst_count() as u32)
                        .filter(|&d| sg.in_degree(d as usize) > 0)
                        .collect();
                    let mut tile_of = vec![u32::MAX; sg.dst_count()];
                    for (rank, &d) in touched.iter().enumerate() {
                        tile_of[d as usize] = (rank / tile_vertices) as u32;
                    }
                    let mut tagged: Vec<(u32, u32, u32)> = sg
                        .iter_edges()
                        .map(|e| (tile_of[e.dst.index()], e.src.raw(), e.dst.raw()))
                        .collect();
                    tagged.sort_unstable();
                    edges.extend(tagged.into_iter().map(|(_, s, d)| Edge::new(s, d)));
                }
                // backbone on the source side: tile sources, group by
                // destination within each tile
                SubgraphKind::InOut => {
                    let touched: Vec<u32> = (0..sg.src_count() as u32)
                        .filter(|&s| sg.out_degree(s as usize) > 0)
                        .collect();
                    let mut tile_of = vec![u32::MAX; sg.src_count()];
                    for (rank, &s) in touched.iter().enumerate() {
                        tile_of[s as usize] = (rank / tile_vertices) as u32;
                    }
                    let mut tagged: Vec<(u32, u32, u32)> = sg
                        .iter_edges()
                        .map(|e| (tile_of[e.src.index()], e.dst.raw(), e.src.raw()))
                        .collect();
                    tagged.sort_unstable();
                    edges.extend(tagged.into_iter().map(|(_, d, s)| Edge::new(s, d)));
                }
            }
        }
        Ok(Self::new("restructured-tiled", edges))
    }

    /// Schedule label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of scheduled edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates the scheduled edges.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Checks that this schedule is a permutation of `g`'s edge multiset.
    ///
    /// # Errors
    ///
    /// As a validation entry point: [`EdgeSchedule::validate_for`] wraps
    /// this check in a typed error.
    pub fn is_permutation_of(&self, g: &BipartiteGraph) -> bool {
        if self.edges.len() != g.edge_count() {
            return false;
        }
        let mut a: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|e| (e.src.raw(), e.dst.raw()))
            .collect();
        let mut b: Vec<(u32, u32)> = g.iter_edges().map(|e| (e.src.raw(), e.dst.raw())).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Typed-error variant of [`EdgeSchedule::is_permutation_of`], for
    /// validation at API boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`GdrError::LengthMismatch`] when the edge counts differ,
    /// and [`GdrError::InvalidConfig`] when the counts match but the edge
    /// multisets do not.
    pub fn validate_for(&self, g: &BipartiteGraph) -> GdrResult<()> {
        GdrError::check_aligned("schedule edges", g.edge_count(), self.edges.len())?;
        if self.is_permutation_of(g) {
            Ok(())
        } else {
            Err(GdrError::invalid_config(
                "schedule",
                format!("not a permutation of {}'s edges", g.name()),
            ))
        }
    }
}

impl AsRef<EdgeSchedule> for EdgeSchedule {
    fn as_ref(&self) -> &EdgeSchedule {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{Backbone, BackboneStrategy};
    use crate::matching::hopcroft_karp;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn graph(seed: u64) -> BipartiteGraph {
        PowerLawConfig::new(30, 30, 120)
            .dst_alpha(0.8)
            .generate("g", seed)
    }

    #[test]
    fn all_schedules_are_permutations() {
        let g = graph(1);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        let r = RestructuredSubgraphs::generate(&g, &b);
        for sched in [
            EdgeSchedule::dst_major(&g),
            EdgeSchedule::src_major(&g),
            EdgeSchedule::random(&g, 7),
            EdgeSchedule::degree_sorted(&g),
            EdgeSchedule::islandized(&g),
            EdgeSchedule::restructured(&r),
        ] {
            assert!(
                sched.is_permutation_of(&g),
                "{} is not a permutation",
                sched.name()
            );
        }
    }

    #[test]
    fn dst_major_groups_destinations() {
        let g = graph(2);
        let s = EdgeSchedule::dst_major(&g);
        // destinations appear as contiguous runs
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        for e in s.iter() {
            if Some(e.dst) != prev {
                assert!(seen.insert(e.dst), "destination revisited: {}", e.dst);
                prev = Some(e.dst);
            }
        }
    }

    #[test]
    fn degree_sorted_starts_with_max_degree() {
        let g = graph(3);
        let s = EdgeSchedule::degree_sorted(&g);
        let first_dst = s.edges()[0].dst.index();
        let max_deg = (0..g.dst_count()).map(|d| g.in_degree(d)).max().unwrap();
        assert_eq!(g.in_degree(first_dst), max_deg);
    }

    #[test]
    fn random_is_seeded() {
        let g = graph(4);
        assert_eq!(EdgeSchedule::random(&g, 5), EdgeSchedule::random(&g, 5));
        assert_ne!(
            EdgeSchedule::random(&g, 5).edges(),
            EdgeSchedule::random(&g, 6).edges()
        );
    }

    #[test]
    fn restructured_emits_subgraphs_in_pipeline_order() {
        let g = graph(5);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        let r = RestructuredSubgraphs::generate(&g, &b);
        let s = EdgeSchedule::restructured(&r);
        // first edges must come from the OutIn subgraph (if non-empty)
        let out_in = r.get(SubgraphKind::OutIn);
        if !out_in.is_empty() {
            let e = s.edges()[0];
            assert!(!b.src_in(e.src.index()) && b.dst_in(e.dst.index()));
        }
        assert_eq!(s.len(), g.edge_count());
    }

    #[test]
    fn empty_graph_schedules() {
        let g = BipartiteGraph::from_pairs("e", 3, 3, &[]).unwrap();
        assert!(EdgeSchedule::dst_major(&g).is_empty());
        assert!(EdgeSchedule::islandized(&g).is_empty());
        assert!(EdgeSchedule::random(&g, 0).is_empty());
    }
}
