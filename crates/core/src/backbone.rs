//! Graph backbone selection (graph recoupling step 1, paper §4.1-4.2).
//!
//! The *backbone* is a vertex set such that every edge of the semantic
//! graph has at least one endpoint inside it — a vertex cover. Built from
//! a maximum matching it can be made **minimum** (König's theorem), and
//! its small size is exactly what lets an accelerator pin backbone-side
//! features on-chip while streaming the rest.

use gdr_hetgraph::BipartiteGraph;

use crate::matching::Matching;
use crate::workspace::MatchScratch;

/// Which construction to use when selecting the backbone from the
/// decoupling result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackboneStrategy {
    /// The paper's Algorithm 2: matched vertices that have at least one
    /// unmatched neighbor enter the backbone, plus a totality fixup for
    /// edges both of whose endpoints the heuristic left out (possible when
    /// a component admits a perfect matching; see DESIGN.md).
    #[default]
    Paper,
    /// Exact minimum vertex cover via König's construction
    /// (`|cover| == |maximum matching|`).
    KonigExact,
    /// Greedy max-degree vertex cover — the I-GCN-"islandization"-like
    /// baseline the paper argues degrades on directed bipartite graphs.
    GreedyDegree,
}

impl std::fmt::Display for BackboneStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackboneStrategy::Paper => "paper",
            BackboneStrategy::KonigExact => "konig",
            BackboneStrategy::GreedyDegree => "greedy-degree",
        };
        f.write_str(s)
    }
}

/// The selected backbone: membership bitmaps for both sides.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::BipartiteGraph;
/// use gdr_core::matching::hopcroft_karp;
/// use gdr_core::backbone::{Backbone, BackboneStrategy};
/// let g = BipartiteGraph::from_pairs("g", 2, 2, &[(0, 0), (1, 0)])?;
/// let m = hopcroft_karp(&g);
/// let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
/// assert!(b.covers_all_edges(&g));
/// assert_eq!(b.len(), m.size()); // König: |cover| == |matching|
/// # Ok::<(), gdr_hetgraph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Backbone {
    src_in: Vec<bool>,
    dst_in: Vec<bool>,
    strategy: BackboneStrategy,
    fixup_promotions: usize,
}

impl Backbone {
    /// Selects the backbone from a decoupling result.
    pub fn select(g: &BipartiteGraph, m: &Matching, strategy: BackboneStrategy) -> Self {
        let mut out = Backbone::default();
        let mut scratch = MatchScratch::default();
        Self::select_into(g, m, strategy, &mut out, &mut scratch);
        out
    }

    /// Workspace variant of [`Backbone::select`]: the membership bitmaps
    /// are rebuilt in place in `out` and BFS state comes from `scratch`,
    /// so the paper heuristic and König construction allocate nothing at
    /// steady state. The greedy-degree baseline keeps its allocating
    /// construction — it is the islandization ablation, not a hot path.
    /// Results are identical to [`Backbone::select`].
    pub fn select_into(
        g: &BipartiteGraph,
        m: &Matching,
        strategy: BackboneStrategy,
        out: &mut Backbone,
        scratch: &mut MatchScratch,
    ) {
        match strategy {
            BackboneStrategy::Paper => Self::paper_heuristic_into(g, m, out),
            BackboneStrategy::KonigExact => Self::konig_into(g, m, out, scratch),
            BackboneStrategy::GreedyDegree => *out = Self::greedy_degree(g),
        }
    }

    /// The paper's Algorithm 2, lines 1-18, plus the totality fixup.
    fn paper_heuristic_into(g: &BipartiteGraph, m: &Matching, out: &mut Backbone) {
        out.src_in.clear();
        out.src_in.resize(g.src_count(), false);
        out.dst_in.clear();
        out.dst_in.resize(g.dst_count(), false);
        // Lines 3-9: matched sources with an unmatched destination neighbor.
        for (s, slot) in out.src_in.iter_mut().enumerate() {
            if !m.src_matched(s) {
                continue;
            }
            let any_unmatched = g
                .out_neighbors(s)
                .iter()
                .any(|&d| !m.dst_matched(d as usize));
            if any_unmatched {
                *slot = true;
            }
        }
        // Lines 10-16: matched destinations with an unmatched source neighbor.
        for (d, slot) in out.dst_in.iter_mut().enumerate() {
            if !m.dst_matched(d) {
                continue;
            }
            let any_unmatched = g
                .in_neighbors(d)
                .iter()
                .any(|&s| !m.src_matched(s as usize));
            if any_unmatched {
                *slot = true;
            }
        }
        // Totality fixup: an edge between two matched vertices neither of
        // which saw an unmatched neighbor is uncovered; promote its source.
        out.fixup_promotions = 0;
        for e in g.iter_edges() {
            if !out.src_in[e.src.index()] && !out.dst_in[e.dst.index()] {
                out.src_in[e.src.index()] = true;
                out.fixup_promotions += 1;
            }
        }
        out.strategy = BackboneStrategy::Paper;
    }

    /// König's minimum vertex cover: `Z` = vertices reachable from
    /// unmatched sources via alternating paths; cover =
    /// `(V_src \ Z) ∪ (V_dst ∩ Z)`.
    fn konig_into(
        g: &BipartiteGraph,
        m: &Matching,
        out: &mut Backbone,
        scratch: &mut MatchScratch,
    ) {
        let n_src = g.src_count();
        let n_dst = g.dst_count();
        let MatchScratch {
            z_src,
            z_dst,
            queue,
            ..
        } = scratch;
        z_src.clear();
        z_src.resize(n_src, false);
        z_dst.clear();
        z_dst.resize(n_dst, false);
        queue.clear();
        for (s, z) in z_src.iter_mut().enumerate() {
            if !m.src_matched(s) {
                *z = true;
                queue.push_back(s as u32);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &d in g.out_neighbors(s as usize) {
                // Travel unmatched edges src -> dst.
                if m.match_of_src(s as usize) == Some(d) {
                    continue;
                }
                if !z_dst[d as usize] {
                    z_dst[d as usize] = true;
                    // Travel the matched edge dst -> src.
                    if let Some(w) = m.match_of_dst(d as usize) {
                        if !z_src[w as usize] {
                            z_src[w as usize] = true;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        out.src_in.clear();
        out.src_in
            .extend((0..n_src).map(|s| m.src_matched(s) && !z_src[s]));
        out.dst_in.clear();
        out.dst_in.extend((0..n_dst).map(|d| z_dst[d]));
        out.strategy = BackboneStrategy::KonigExact;
        out.fixup_promotions = 0;
    }

    /// Greedy max-degree cover: repeatedly take the vertex covering the
    /// most uncovered edges. Ignores the matching entirely.
    fn greedy_degree(g: &BipartiteGraph) -> Self {
        let n_src = g.src_count();
        let n_dst = g.dst_count();
        let mut src_in = vec![false; n_src];
        let mut dst_in = vec![false; n_dst];
        let mut src_deg: Vec<usize> = (0..n_src).map(|s| g.out_degree(s)).collect();
        let mut dst_deg: Vec<usize> = (0..n_dst).map(|d| g.in_degree(d)).collect();
        let mut covered = vec![false; g.edge_count()];
        // Edge index lookup: edges in source-major order.
        let mut edge_ids_by_src: Vec<Vec<usize>> = vec![Vec::new(); n_src];
        let mut edge_ids_by_dst: Vec<Vec<usize>> = vec![Vec::new(); n_dst];
        for (i, e) in g.iter_edges().enumerate() {
            edge_ids_by_src[e.src.index()].push(i);
            edge_ids_by_dst[e.dst.index()].push(i);
        }
        let edges: Vec<_> = g.iter_edges().collect();
        let mut remaining = g.edge_count();
        while remaining > 0 {
            // Pick the globally highest-degree vertex (ties: src side, low id).
            let (best_is_src, best_id, best_deg) = {
                let (si, sd) = src_deg
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                    .map(|(i, &d)| (i, d))
                    .unwrap_or((0, 0));
                let (di, dd) = dst_deg
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                    .map(|(i, &d)| (i, d))
                    .unwrap_or((0, 0));
                if sd >= dd {
                    (true, si, sd)
                } else {
                    (false, di, dd)
                }
            };
            debug_assert!(best_deg > 0, "uncovered edges imply a positive degree");
            let ids = if best_is_src {
                src_in[best_id] = true;
                std::mem::take(&mut edge_ids_by_src[best_id])
            } else {
                dst_in[best_id] = true;
                std::mem::take(&mut edge_ids_by_dst[best_id])
            };
            for i in ids {
                if covered[i] {
                    continue;
                }
                covered[i] = true;
                remaining -= 1;
                let e = edges[i];
                src_deg[e.src.index()] -= 1;
                dst_deg[e.dst.index()] -= 1;
            }
        }
        Self {
            src_in,
            dst_in,
            strategy: BackboneStrategy::GreedyDegree,
            fixup_promotions: 0,
        }
    }

    /// Membership of source `s`.
    pub fn src_in(&self, s: usize) -> bool {
        self.src_in[s]
    }

    /// Membership of destination `d`.
    pub fn dst_in(&self, d: usize) -> bool {
        self.dst_in[d]
    }

    /// Source-side membership bitmap.
    pub fn src_bitmap(&self) -> &[bool] {
        &self.src_in
    }

    /// Destination-side membership bitmap.
    pub fn dst_bitmap(&self) -> &[bool] {
        &self.dst_in
    }

    /// Total backbone size (both sides).
    pub fn len(&self) -> usize {
        self.src_len() + self.dst_len()
    }

    /// Returns `true` when the backbone is empty (only possible for an
    /// edgeless graph).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of source-side backbone vertices.
    pub fn src_len(&self) -> usize {
        self.src_in.iter().filter(|&&b| b).count()
    }

    /// Number of destination-side backbone vertices.
    pub fn dst_len(&self) -> usize {
        self.dst_in.iter().filter(|&&b| b).count()
    }

    /// Strategy used to build this backbone.
    pub fn strategy(&self) -> BackboneStrategy {
        self.strategy
    }

    /// Number of sources promoted by the totality fixup (always 0 for the
    /// exact and greedy strategies).
    pub fn fixup_promotions(&self) -> usize {
        self.fixup_promotions
    }

    /// Verifies the vertex-cover property: every edge has an endpoint in
    /// the backbone.
    pub fn covers_all_edges(&self, g: &BipartiteGraph) -> bool {
        g.iter_edges()
            .all(|e| self.src_in[e.src.index()] || self.dst_in[e.dst.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{fifo_matching, hopcroft_karp};
    use gdr_hetgraph::gen::PowerLawConfig;

    #[test]
    fn konig_cover_size_equals_matching() {
        for seed in 0..20 {
            let g = PowerLawConfig::new(60, 50, 240)
                .dst_alpha(0.7)
                .generate("k", seed);
            let m = hopcroft_karp(&g);
            let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
            assert!(b.covers_all_edges(&g), "seed {seed}");
            assert_eq!(b.len(), m.size(), "König failed at seed {seed}");
        }
    }

    #[test]
    fn paper_heuristic_covers_with_fixup() {
        for seed in 0..20 {
            let g = PowerLawConfig::new(60, 60, 200).generate("p", seed);
            let m = fifo_matching(&g);
            let b = Backbone::select(&g, &m, BackboneStrategy::Paper);
            assert!(b.covers_all_edges(&g), "seed {seed}");
        }
    }

    #[test]
    fn paper_fixup_triggers_on_perfect_matching() {
        // K2,2 has a perfect matching; no vertex has an unmatched neighbor,
        // so Algorithm 2 as printed selects nothing — the fixup must act.
        let g = BipartiteGraph::from_pairs("k22", 2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 2);
        let b = Backbone::select(&g, &m, BackboneStrategy::Paper);
        assert!(b.fixup_promotions() > 0);
        assert!(b.covers_all_edges(&g));
    }

    #[test]
    fn greedy_degree_covers() {
        for seed in 0..10 {
            let g = PowerLawConfig::new(50, 50, 300)
                .dst_alpha(1.0)
                .generate("g", seed);
            let m = hopcroft_karp(&g);
            let b = Backbone::select(&g, &m, BackboneStrategy::GreedyDegree);
            assert!(b.covers_all_edges(&g), "seed {seed}");
            // Greedy is a valid cover but can exceed the optimum.
            let exact = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
            assert!(b.len() >= exact.len());
        }
    }

    #[test]
    fn star_graph_backbone_is_hub() {
        // one destination hub covering everything
        let g = BipartiteGraph::from_pairs("star", 5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)])
            .unwrap();
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 1);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        assert_eq!(b.len(), 1);
        assert!(b.dst_in(0));
        let bg = Backbone::select(&g, &m, BackboneStrategy::GreedyDegree);
        assert_eq!(bg.len(), 1);
        assert!(bg.dst_in(0));
    }

    #[test]
    fn empty_graph_has_empty_backbone() {
        let g = BipartiteGraph::from_pairs("e", 4, 4, &[]).unwrap();
        let m = hopcroft_karp(&g);
        for strat in [
            BackboneStrategy::Paper,
            BackboneStrategy::KonigExact,
            BackboneStrategy::GreedyDegree,
        ] {
            let b = Backbone::select(&g, &m, strat);
            assert!(b.is_empty(), "{strat}");
            assert!(b.covers_all_edges(&g));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(BackboneStrategy::Paper.to_string(), "paper");
        assert_eq!(BackboneStrategy::KonigExact.to_string(), "konig");
        assert_eq!(BackboneStrategy::GreedyDegree.to_string(), "greedy-degree");
    }
}
