//! Top-level graph restructuring driver (decoupling + recoupling).
//!
//! [`Restructurer`] wires the pieces together exactly as the GDR-HGNN
//! frontend does: decouple (maximum matching) → select backbone → generate
//! the three subgraphs → emit a locality-friendly edge schedule. It also
//! implements the paper's proposed extension of applying the method
//! *recursively* to subgraphs ("…can be applied to subgraphs to generate
//! smaller sub-subgraphs, thereby exploiting data locality in a smaller
//! on-chip buffer", §4.3).

use gdr_hetgraph::BipartiteGraph;

use crate::backbone::{Backbone, BackboneStrategy};
use crate::matching::{
    fifo_matching_with_stats, greedy_matching, hopcroft_karp, DecouplingStats, Matching,
};
use crate::recouple::{RestructuredSubgraphs, SubgraphKind, VertexPartition};
use crate::schedule::EdgeSchedule;

/// Which matching engine performs graph decoupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatcherKind {
    /// The paper's FIFO-driven Algorithm 1 (what the hardware executes).
    #[default]
    Fifo,
    /// Hopcroft-Karp reference engine.
    HopcroftKarp,
    /// One-pass greedy (maximal only) — decoupling-quality ablation.
    Greedy,
}

impl std::fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatcherKind::Fifo => "fifo",
            MatcherKind::HopcroftKarp => "hopcroft-karp",
            MatcherKind::Greedy => "greedy",
        };
        f.write_str(s)
    }
}

/// Configuration of the restructuring method.
///
/// # Examples
///
/// ```
/// use gdr_core::restructure::Restructurer;
/// use gdr_core::backbone::BackboneStrategy;
/// let r = Restructurer::new()
///     .backbone_strategy(BackboneStrategy::KonigExact)
///     .recursion_depth(1);
/// assert_eq!(r.recursion_depth_value(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restructurer {
    matcher: MatcherKind,
    strategy: BackboneStrategy,
    recursion_depth: usize,
    min_recurse_edges: usize,
}

impl Default for Restructurer {
    fn default() -> Self {
        Self::new()
    }
}

impl Restructurer {
    /// Creates a restructurer with the defaults: Hopcroft-Karp matcher
    /// (same maximum matching as the paper's Algorithm 1, but `O(E·√V)`
    /// instead of worst-case quadratic on dense semantic graphs — the
    /// hardware's concurrent searches behave like its phases), paper
    /// backbone heuristic, no recursion.
    pub fn new() -> Self {
        Self {
            matcher: MatcherKind::HopcroftKarp,
            strategy: BackboneStrategy::Paper,
            recursion_depth: 0,
            min_recurse_edges: 64,
        }
    }

    /// Sets the matching engine.
    pub fn matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    /// Sets the backbone selection strategy.
    pub fn backbone_strategy(mut self, strategy: BackboneStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Applies the method recursively to subgraphs, `depth` extra levels.
    pub fn recursion_depth(mut self, depth: usize) -> Self {
        self.recursion_depth = depth;
        self
    }

    /// Subgraphs below this edge count are not recursed into.
    pub fn min_recurse_edges(mut self, min_edges: usize) -> Self {
        self.min_recurse_edges = min_edges;
        self
    }

    /// Configured recursion depth.
    pub fn recursion_depth_value(&self) -> usize {
        self.recursion_depth
    }

    /// Configured matcher.
    pub fn matcher_kind(&self) -> MatcherKind {
        self.matcher
    }

    /// Configured backbone strategy.
    pub fn strategy_kind(&self) -> BackboneStrategy {
        self.strategy
    }

    fn run_matcher(&self, g: &BipartiteGraph) -> (Matching, DecouplingStats) {
        match self.matcher {
            MatcherKind::Fifo => fifo_matching_with_stats(g),
            MatcherKind::HopcroftKarp => (hopcroft_karp(g), DecouplingStats::default()),
            MatcherKind::Greedy => (greedy_matching(g), DecouplingStats::default()),
        }
    }

    /// Restructures one semantic graph.
    pub fn restructure(&self, g: &BipartiteGraph) -> Restructured {
        let (matching, decoupling_stats) = self.run_matcher(g);
        let backbone = Backbone::select(g, &matching, self.strategy);
        let partition = VertexPartition::from_backbone(g, &backbone);
        let subgraphs = RestructuredSubgraphs::generate(g, &backbone);
        let schedule = if self.recursion_depth == 0 {
            EdgeSchedule::restructured(&subgraphs)
        } else {
            let mut edges = Vec::with_capacity(g.edge_count());
            for (kind, sg) in subgraphs.iter() {
                self.schedule_recursive(kind, sg, self.recursion_depth, &mut edges);
            }
            EdgeSchedule::new("restructured-recursive", edges)
        };
        Restructured {
            matching,
            backbone,
            partition,
            subgraphs,
            schedule,
            decoupling_stats,
        }
    }

    fn schedule_recursive(
        &self,
        kind: SubgraphKind,
        sg: &BipartiteGraph,
        depth: usize,
        out: &mut Vec<gdr_hetgraph::Edge>,
    ) {
        if depth == 0 || sg.edge_count() < self.min_recurse_edges {
            out.extend(single_subgraph_schedule(kind, sg));
            return;
        }
        let (m, _) = self.run_matcher(sg);
        let b = Backbone::select(sg, &m, self.strategy);
        let subs = RestructuredSubgraphs::generate(sg, &b);
        for (k2, sg2) in subs.iter() {
            self.schedule_recursive(k2, sg2, depth - 1, out);
        }
    }
}

/// Emits one subgraph's edges in its locality-friendly order (see
/// [`EdgeSchedule::restructured`] for the rationale).
fn single_subgraph_schedule(kind: SubgraphKind, sg: &BipartiteGraph) -> Vec<gdr_hetgraph::Edge> {
    let mut edges = Vec::with_capacity(sg.edge_count());
    match kind {
        SubgraphKind::OutIn => {
            for s in 0..sg.src_count() {
                for &d in sg.out_neighbors(s) {
                    edges.push(gdr_hetgraph::Edge::new(s as u32, d));
                }
            }
        }
        SubgraphKind::InIn | SubgraphKind::InOut => {
            for d in 0..sg.dst_count() {
                for &s in sg.in_neighbors(d) {
                    edges.push(gdr_hetgraph::Edge::new(s, d as u32));
                }
            }
        }
    }
    edges
}

/// The complete result of restructuring one semantic graph.
#[derive(Debug, Clone)]
pub struct Restructured {
    matching: Matching,
    backbone: Backbone,
    partition: VertexPartition,
    subgraphs: RestructuredSubgraphs,
    schedule: EdgeSchedule,
    decoupling_stats: DecouplingStats,
}

impl Restructured {
    /// The maximum matching found by graph decoupling.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// The selected graph backbone.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The four-way vertex partition.
    pub fn partition(&self) -> &VertexPartition {
        &self.partition
    }

    /// The three generated subgraphs.
    pub fn subgraphs(&self) -> &RestructuredSubgraphs {
        &self.subgraphs
    }

    /// The restructured edge schedule (possibly recursively refined).
    pub fn schedule(&self) -> &EdgeSchedule {
        &self.schedule
    }

    /// Work counters from the decoupling engine (FIFO matcher only).
    pub fn decoupling_stats(&self) -> DecouplingStats {
        self.decoupling_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::simulate_lru;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn graph(seed: u64) -> BipartiteGraph {
        PowerLawConfig::new(300, 300, 2400)
            .dst_alpha(0.9)
            .generate("g", seed)
    }

    #[test]
    fn default_config_restructures() {
        let g = graph(1);
        let r = Restructurer::new().restructure(&g);
        assert!(r.schedule().is_permutation_of(&g));
        assert!(r.backbone().covers_all_edges(&g));
        assert!(r.matching().is_valid(&g));
        assert_eq!(r.subgraphs().total_edges(), g.edge_count());
    }

    #[test]
    fn fifo_matcher_reports_work_counters() {
        let g = graph(1);
        let r = Restructurer::new()
            .matcher(MatcherKind::Fifo)
            .restructure(&g);
        assert!(r.decoupling_stats().expansions > 0);
        assert!(r.schedule().is_permutation_of(&g));
    }

    #[test]
    fn all_matchers_produce_valid_results() {
        let g = graph(2);
        for m in [
            MatcherKind::Fifo,
            MatcherKind::HopcroftKarp,
            MatcherKind::Greedy,
        ] {
            let r = Restructurer::new().matcher(m).restructure(&g);
            assert!(r.schedule().is_permutation_of(&g), "{m}");
            assert!(r.backbone().covers_all_edges(&g), "{m}");
        }
    }

    #[test]
    fn recursion_keeps_permutation_property() {
        let g = graph(3);
        for depth in 0..=2 {
            let r = Restructurer::new()
                .backbone_strategy(BackboneStrategy::KonigExact)
                .recursion_depth(depth)
                .restructure(&g);
            assert!(
                r.schedule().is_permutation_of(&g),
                "depth {depth} broke the permutation property"
            );
        }
    }

    #[test]
    fn recursion_improves_small_buffer_locality() {
        let g = PowerLawConfig::new(600, 600, 4800)
            .dst_alpha(0.9)
            .generate("g", 4);
        let flat = Restructurer::new()
            .backbone_strategy(BackboneStrategy::KonigExact)
            .restructure(&g);
        let deep = Restructurer::new()
            .backbone_strategy(BackboneStrategy::KonigExact)
            .recursion_depth(2)
            .restructure(&g);
        let tiny_cap = 48;
        let m_flat = simulate_lru(&g, flat.schedule(), tiny_cap).misses();
        let m_deep = simulate_lru(&g, deep.schedule(), tiny_cap).misses();
        // Recursion targets smaller buffers; it must not be much worse and
        // should typically help.
        assert!(
            (m_deep as f64) <= m_flat as f64 * 1.10,
            "recursive {m_deep} vs flat {m_flat}"
        );
    }

    #[test]
    fn builder_accessors() {
        let r = Restructurer::new()
            .matcher(MatcherKind::Greedy)
            .backbone_strategy(BackboneStrategy::GreedyDegree)
            .recursion_depth(3)
            .min_recurse_edges(10);
        assert_eq!(r.matcher_kind(), MatcherKind::Greedy);
        assert_eq!(r.strategy_kind(), BackboneStrategy::GreedyDegree);
        assert_eq!(r.recursion_depth_value(), 3);
    }

    #[test]
    fn display_matcher_names() {
        assert_eq!(MatcherKind::Fifo.to_string(), "fifo");
        assert_eq!(MatcherKind::HopcroftKarp.to_string(), "hopcroft-karp");
        assert_eq!(MatcherKind::Greedy.to_string(), "greedy");
    }

    #[test]
    fn empty_graph_restructures_to_empty() {
        let g = BipartiteGraph::from_pairs("e", 5, 5, &[]).unwrap();
        let r = Restructurer::new().restructure(&g);
        assert!(r.schedule().is_empty());
        assert!(r.backbone().is_empty());
        assert_eq!(r.subgraphs().total_edges(), 0);
    }
}
