//! Top-level graph restructuring driver (decoupling + recoupling).
//!
//! [`Restructurer`] wires the pieces together exactly as the GDR-HGNN
//! frontend does: decouple (maximum matching) → select backbone → generate
//! the three subgraphs → emit a locality-friendly edge schedule. It also
//! implements the paper's proposed extension of applying the method
//! *recursively* to subgraphs ("…can be applied to subgraphs to generate
//! smaller sub-subgraphs, thereby exploiting data locality in a smaller
//! on-chip buffer", §4.3).

use gdr_hetgraph::BipartiteGraph;

use crate::backbone::{Backbone, BackboneStrategy};
use crate::matching::{
    fifo_matching_into, fifo_matching_with_stats, greedy_matching, greedy_matching_into,
    hopcroft_karp, hopcroft_karp_into, DecouplingStats, Matching,
};
use crate::recouple::{RestructuredSubgraphs, SubgraphKind, VertexPartition};
use crate::schedule::EdgeSchedule;
use crate::workspace::Workspace;

/// Which matching engine performs graph decoupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatcherKind {
    /// The paper's FIFO-driven Algorithm 1 (what the hardware executes).
    #[default]
    Fifo,
    /// Hopcroft-Karp reference engine.
    HopcroftKarp,
    /// One-pass greedy (maximal only) — decoupling-quality ablation.
    Greedy,
}

impl std::fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatcherKind::Fifo => "fifo",
            MatcherKind::HopcroftKarp => "hopcroft-karp",
            MatcherKind::Greedy => "greedy",
        };
        f.write_str(s)
    }
}

/// Configuration of the restructuring method.
///
/// # Examples
///
/// ```
/// use gdr_core::restructure::Restructurer;
/// use gdr_core::backbone::BackboneStrategy;
/// let r = Restructurer::new()
///     .backbone_strategy(BackboneStrategy::KonigExact)
///     .recursion_depth(1);
/// assert_eq!(r.recursion_depth_value(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restructurer {
    matcher: MatcherKind,
    strategy: BackboneStrategy,
    recursion_depth: usize,
    min_recurse_edges: usize,
}

impl Default for Restructurer {
    fn default() -> Self {
        Self::new()
    }
}

impl Restructurer {
    /// Creates a restructurer with the defaults: Hopcroft-Karp matcher
    /// (same maximum matching as the paper's Algorithm 1, but `O(E·√V)`
    /// instead of worst-case quadratic on dense semantic graphs — the
    /// hardware's concurrent searches behave like its phases), paper
    /// backbone heuristic, no recursion.
    pub fn new() -> Self {
        Self {
            matcher: MatcherKind::HopcroftKarp,
            strategy: BackboneStrategy::Paper,
            recursion_depth: 0,
            min_recurse_edges: 64,
        }
    }

    /// Sets the matching engine.
    pub fn matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    /// Sets the backbone selection strategy.
    pub fn backbone_strategy(mut self, strategy: BackboneStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Applies the method recursively to subgraphs, `depth` extra levels.
    pub fn recursion_depth(mut self, depth: usize) -> Self {
        self.recursion_depth = depth;
        self
    }

    /// Subgraphs below this edge count are not recursed into.
    pub fn min_recurse_edges(mut self, min_edges: usize) -> Self {
        self.min_recurse_edges = min_edges;
        self
    }

    /// Configured recursion depth.
    pub fn recursion_depth_value(&self) -> usize {
        self.recursion_depth
    }

    /// Configured matcher.
    pub fn matcher_kind(&self) -> MatcherKind {
        self.matcher
    }

    /// Configured backbone strategy.
    pub fn strategy_kind(&self) -> BackboneStrategy {
        self.strategy
    }

    fn run_matcher(&self, g: &BipartiteGraph) -> (Matching, DecouplingStats) {
        match self.matcher {
            MatcherKind::Fifo => fifo_matching_with_stats(g),
            MatcherKind::HopcroftKarp => (hopcroft_karp(g), DecouplingStats::default()),
            MatcherKind::Greedy => (greedy_matching(g), DecouplingStats::default()),
        }
    }

    /// Restructures one semantic graph.
    ///
    /// This is the allocating entry point: it builds a transient
    /// [`Workspace`], runs [`Restructurer::restructure_with`], and moves
    /// the results out — so it costs exactly one restructuring pass
    /// worth of allocations. Callers restructuring many graphs should
    /// hold a workspace and call `restructure_with` directly.
    pub fn restructure(&self, g: &BipartiteGraph) -> Restructured {
        let mut ws = Workspace::new();
        let decoupling_stats = self.restructure_with(&mut ws, g);
        let name = if self.recursion_depth == 0 {
            "restructured"
        } else {
            "restructured-recursive"
        };
        Restructured {
            matching: ws.matching,
            backbone: ws.backbone,
            partition: ws.partition,
            subgraphs: ws.subgraphs,
            schedule: EdgeSchedule::new(name, ws.edges),
            decoupling_stats,
        }
    }

    /// Restructures one semantic graph **into a reusable workspace**:
    /// decouple → select backbone → partition → generate subgraphs →
    /// emit the schedule, with every intermediate rebuilt in place. At
    /// steady state (buffers grown to the largest graph seen) the pass
    /// performs zero heap allocation; results are byte-identical to
    /// [`Restructurer::restructure`], which the 48-seed property net in
    /// `crates/core/tests/workspace_properties.rs` pins.
    ///
    /// On return the workspace holds the full result: `ws.matching`,
    /// `ws.backbone`, `ws.partition`, `ws.subgraphs` (including
    /// [`RestructuredSubgraphs::cover_violations`]), and the schedule
    /// edge order in `ws.edges`. The returned [`DecouplingStats`] carry
    /// the FIFO matcher's work counters (zero for the other engines, as
    /// in the allocating path).
    ///
    /// Recursive refinement (`recursion_depth > 0`) reuses the workspace
    /// for the top level; the recursion into sub-subgraphs allocates per
    /// level, exactly as before — it is an offline schedule-quality
    /// extension, not the streaming hot path.
    pub fn restructure_with(&self, ws: &mut Workspace, g: &BipartiteGraph) -> DecouplingStats {
        let stats = match self.matcher {
            MatcherKind::Fifo => fifo_matching_into(g, &mut ws.matching, &mut ws.match_scratch),
            MatcherKind::HopcroftKarp => {
                hopcroft_karp_into(g, &mut ws.matching, &mut ws.match_scratch);
                DecouplingStats::default()
            }
            MatcherKind::Greedy => {
                greedy_matching_into(g, &mut ws.matching);
                DecouplingStats::default()
            }
        };
        Backbone::select_into(
            g,
            &ws.matching,
            self.strategy,
            &mut ws.backbone,
            &mut ws.match_scratch,
        );
        VertexPartition::from_backbone_into(g, &ws.backbone, &mut ws.partition);
        RestructuredSubgraphs::generate_into(
            g,
            &ws.backbone,
            &mut ws.subgraphs,
            &mut ws.recouple_scratch,
        );
        if self.recursion_depth == 0 {
            EdgeSchedule::restructured_into(&ws.subgraphs, &mut ws.edges);
        } else {
            let Workspace {
                subgraphs, edges, ..
            } = ws;
            edges.clear();
            edges.reserve(g.edge_count());
            for (kind, sg) in subgraphs.iter() {
                self.schedule_recursive(kind, sg, self.recursion_depth, edges);
            }
        }
        stats
    }

    fn schedule_recursive(
        &self,
        kind: SubgraphKind,
        sg: &BipartiteGraph,
        depth: usize,
        out: &mut Vec<gdr_hetgraph::Edge>,
    ) {
        if depth == 0 || sg.edge_count() < self.min_recurse_edges {
            out.extend(single_subgraph_schedule(kind, sg));
            return;
        }
        let (m, _) = self.run_matcher(sg);
        let b = Backbone::select(sg, &m, self.strategy);
        let subs = RestructuredSubgraphs::generate(sg, &b);
        for (k2, sg2) in subs.iter() {
            self.schedule_recursive(k2, sg2, depth - 1, out);
        }
    }
}

/// Emits one subgraph's edges in its locality-friendly order (see
/// [`EdgeSchedule::restructured`] for the rationale).
fn single_subgraph_schedule(kind: SubgraphKind, sg: &BipartiteGraph) -> Vec<gdr_hetgraph::Edge> {
    let mut edges = Vec::with_capacity(sg.edge_count());
    match kind {
        SubgraphKind::OutIn => {
            for s in 0..sg.src_count() {
                for &d in sg.out_neighbors(s) {
                    edges.push(gdr_hetgraph::Edge::new(s as u32, d));
                }
            }
        }
        SubgraphKind::InIn | SubgraphKind::InOut => {
            for d in 0..sg.dst_count() {
                for &s in sg.in_neighbors(d) {
                    edges.push(gdr_hetgraph::Edge::new(s, d as u32));
                }
            }
        }
    }
    edges
}

/// The complete result of restructuring one semantic graph.
#[derive(Debug, Clone)]
pub struct Restructured {
    matching: Matching,
    backbone: Backbone,
    partition: VertexPartition,
    subgraphs: RestructuredSubgraphs,
    schedule: EdgeSchedule,
    decoupling_stats: DecouplingStats,
}

impl Restructured {
    /// The maximum matching found by graph decoupling.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// The selected graph backbone.
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The four-way vertex partition.
    pub fn partition(&self) -> &VertexPartition {
        &self.partition
    }

    /// The three generated subgraphs.
    pub fn subgraphs(&self) -> &RestructuredSubgraphs {
        &self.subgraphs
    }

    /// Vertex-cover violations seen while generating the subgraphs
    /// (see [`RestructuredSubgraphs::cover_violations`]). Always 0 for
    /// the shipped backbone strategies; a nonzero value in a release
    /// build means the restructuring consumed a broken backbone and the
    /// schedule's locality guarantees do not hold.
    pub fn cover_violations(&self) -> usize {
        self.subgraphs.cover_violations()
    }

    /// The restructured edge schedule (possibly recursively refined).
    pub fn schedule(&self) -> &EdgeSchedule {
        &self.schedule
    }

    /// Work counters from the decoupling engine (FIFO matcher only).
    pub fn decoupling_stats(&self) -> DecouplingStats {
        self.decoupling_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::simulate_lru;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn graph(seed: u64) -> BipartiteGraph {
        PowerLawConfig::new(300, 300, 2400)
            .dst_alpha(0.9)
            .generate("g", seed)
    }

    #[test]
    fn default_config_restructures() {
        let g = graph(1);
        let r = Restructurer::new().restructure(&g);
        assert!(r.schedule().is_permutation_of(&g));
        assert!(r.backbone().covers_all_edges(&g));
        assert!(r.matching().is_valid(&g));
        assert_eq!(r.subgraphs().total_edges(), g.edge_count());
    }

    #[test]
    fn fifo_matcher_reports_work_counters() {
        let g = graph(1);
        let r = Restructurer::new()
            .matcher(MatcherKind::Fifo)
            .restructure(&g);
        assert!(r.decoupling_stats().expansions > 0);
        assert!(r.schedule().is_permutation_of(&g));
    }

    #[test]
    fn all_matchers_produce_valid_results() {
        let g = graph(2);
        for m in [
            MatcherKind::Fifo,
            MatcherKind::HopcroftKarp,
            MatcherKind::Greedy,
        ] {
            let r = Restructurer::new().matcher(m).restructure(&g);
            assert!(r.schedule().is_permutation_of(&g), "{m}");
            assert!(r.backbone().covers_all_edges(&g), "{m}");
        }
    }

    #[test]
    fn recursion_keeps_permutation_property() {
        let g = graph(3);
        for depth in 0..=2 {
            let r = Restructurer::new()
                .backbone_strategy(BackboneStrategy::KonigExact)
                .recursion_depth(depth)
                .restructure(&g);
            assert!(
                r.schedule().is_permutation_of(&g),
                "depth {depth} broke the permutation property"
            );
        }
    }

    #[test]
    fn recursion_improves_small_buffer_locality() {
        let g = PowerLawConfig::new(600, 600, 4800)
            .dst_alpha(0.9)
            .generate("g", 4);
        let flat = Restructurer::new()
            .backbone_strategy(BackboneStrategy::KonigExact)
            .restructure(&g);
        let deep = Restructurer::new()
            .backbone_strategy(BackboneStrategy::KonigExact)
            .recursion_depth(2)
            .restructure(&g);
        let tiny_cap = 48;
        let m_flat = simulate_lru(&g, flat.schedule(), tiny_cap).misses();
        let m_deep = simulate_lru(&g, deep.schedule(), tiny_cap).misses();
        // Recursion targets smaller buffers; it must not be much worse and
        // should typically help.
        assert!(
            (m_deep as f64) <= m_flat as f64 * 1.10,
            "recursive {m_deep} vs flat {m_flat}"
        );
    }

    #[test]
    fn builder_accessors() {
        let r = Restructurer::new()
            .matcher(MatcherKind::Greedy)
            .backbone_strategy(BackboneStrategy::GreedyDegree)
            .recursion_depth(3)
            .min_recurse_edges(10);
        assert_eq!(r.matcher_kind(), MatcherKind::Greedy);
        assert_eq!(r.strategy_kind(), BackboneStrategy::GreedyDegree);
        assert_eq!(r.recursion_depth_value(), 3);
    }

    #[test]
    fn display_matcher_names() {
        assert_eq!(MatcherKind::Fifo.to_string(), "fifo");
        assert_eq!(MatcherKind::HopcroftKarp.to_string(), "hopcroft-karp");
        assert_eq!(MatcherKind::Greedy.to_string(), "greedy");
    }

    #[test]
    fn empty_graph_restructures_to_empty() {
        let g = BipartiteGraph::from_pairs("e", 5, 5, &[]).unwrap();
        let r = Restructurer::new().restructure(&g);
        assert!(r.schedule().is_empty());
        assert!(r.backbone().is_empty());
        assert_eq!(r.subgraphs().total_edges(), 0);
    }
}
