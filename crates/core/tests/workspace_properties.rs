//! Reuse-vs-fresh equivalence net over the restructuring workspace.
//!
//! Each case draws a randomized restructurer configuration — matching
//! engine, backbone strategy, recursion depth — from the in-workspace
//! seeded `rand` shim and drives **one long-lived [`Workspace`]**
//! through a sequence of graphs of wildly different sizes (tiny ↔ large
//! interleaved, plus empty and star-shaped degenerates), asserting after
//! every step that the workspace contents are byte-identical to the
//! fresh-allocation path on the same graph:
//!
//! * **matching** — same assignment tables and size;
//! * **backbone** — same membership bitmaps, strategy, fixups;
//! * **partition** — same four class FIFOs;
//! * **subgraphs** — same three edge lists, names, and
//!   `cover_violations`;
//! * **schedule** — same emitted edge order;
//! * **stats** — same decoupling work counters;
//! * **locality** — the pooled LRU scratch produces the same
//!   [`LocalityReport`](gdr_core::locality::LocalityReport) as a fresh
//!   simulation at any capacity.
//!
//! This is what makes the allocating wrappers safe as thin adapters:
//! any divergence between the paths is a correctness bug, not a tuning
//! difference.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gdr_core::backbone::BackboneStrategy;
use gdr_core::restructure::{MatcherKind, Restructurer};
use gdr_core::workspace::Workspace;
use gdr_hetgraph::gen::PowerLawConfig;
use gdr_hetgraph::BipartiteGraph;

/// Seeds per property — matches the serve property net's count; cheap
/// because everything runs on generated graphs.
const SEEDS: u64 = 48;

fn random_restructurer(rng: &mut SmallRng) -> Restructurer {
    let matcher = [
        MatcherKind::Fifo,
        MatcherKind::HopcroftKarp,
        MatcherKind::Greedy,
    ][rng.gen_range(0..3usize)];
    let strategy = [
        BackboneStrategy::Paper,
        BackboneStrategy::KonigExact,
        BackboneStrategy::GreedyDegree,
    ][rng.gen_range(0..3usize)];
    // Recursion reuses the workspace at the top level only, but its
    // schedule must still match the fresh path exactly.
    let depth = rng.gen_range(0..2usize);
    Restructurer::new()
        .matcher(matcher)
        .backbone_strategy(strategy)
        .recursion_depth(depth)
        .min_recurse_edges(32)
}

/// A graph whose size class alternates between steps, so the workspace
/// repeatedly grows, shrinks, and regrows its buffers.
fn random_graph(rng: &mut SmallRng, step: usize) -> BipartiteGraph {
    match step % 4 {
        // large, skewed
        0 => PowerLawConfig::new(
            rng.gen_range(200..400usize),
            rng.gen_range(200..400usize),
            rng.gen_range(1200..2400usize),
        )
        .dst_alpha(rng.gen_range(0.5..1.1))
        .generate("big", rng.gen_range(0..1_000_000u64)),
        // tiny
        1 => PowerLawConfig::new(
            rng.gen_range(2..12usize),
            rng.gen_range(2..12usize),
            rng.gen_range(1..24usize),
        )
        .generate("tiny", rng.gen_range(0..1_000_000u64)),
        // degenerate: edgeless or a star hub
        2 => {
            if rng.gen_bool(0.5) {
                BipartiteGraph::from_pairs("empty", 7, 5, &[]).expect("valid")
            } else {
                let spokes = rng.gen_range(1..40u32);
                let pairs: Vec<(u32, u32)> = (0..spokes).map(|s| (s, 0)).collect();
                BipartiteGraph::from_pairs("star", spokes as usize, 1, &pairs).expect("valid")
            }
        }
        // medium
        _ => PowerLawConfig::new(
            rng.gen_range(40..120usize),
            rng.gen_range(40..120usize),
            rng.gen_range(100..600usize),
        )
        .dst_alpha(rng.gen_range(0.3..1.0))
        .generate("mid", rng.gen_range(0..1_000_000u64)),
    }
}

#[test]
fn reused_workspace_is_byte_identical_to_fresh_restructuring() {
    for seed in 0..SEEDS {
        let mut rng = SmallRng::seed_from_u64(seed);
        let r = random_restructurer(&mut rng);
        let mut ws = Workspace::new();
        for step in 0..6 {
            let g = random_graph(&mut rng, step);
            let stats = r.restructure_with(&mut ws, &g);
            let fresh = r.restructure(&g);
            let ctx = format!("seed {seed} step {step} graph {}", g.name());
            assert_eq!(&ws.matching, fresh.matching(), "matching: {ctx}");
            assert_eq!(&ws.backbone, fresh.backbone(), "backbone: {ctx}");
            assert_eq!(&ws.partition, fresh.partition(), "partition: {ctx}");
            assert_eq!(&ws.subgraphs, fresh.subgraphs(), "subgraphs: {ctx}");
            assert_eq!(
                ws.edges.as_slice(),
                fresh.schedule().edges(),
                "schedule: {ctx}"
            );
            assert_eq!(stats, fresh.decoupling_stats(), "stats: {ctx}");
            assert_eq!(ws.subgraphs.cover_violations(), 0, "cover: {ctx}");
            // and the workspace result is a real restructuring
            assert!(ws.backbone.covers_all_edges(&g), "{ctx}");
            assert_eq!(ws.edges.len(), g.edge_count(), "{ctx}");
        }
    }
}

#[test]
fn pooled_lru_scratch_is_byte_identical_to_fresh_simulation() {
    use gdr_core::locality::{try_simulate_lru, try_simulate_lru_with};
    use gdr_core::schedule::EdgeSchedule;

    for seed in 0..SEEDS {
        let mut rng = SmallRng::seed_from_u64(2_000 + seed);
        let mut ws = Workspace::new();
        for step in 0..6 {
            let g = random_graph(&mut rng, step);
            // Alternate natural and restructured orders so the pooled
            // scratch sees both hit-heavy and miss-heavy access streams.
            let schedule = if rng.gen_bool(0.5) {
                EdgeSchedule::dst_major(&g)
            } else {
                random_restructurer(&mut rng)
                    .restructure(&g)
                    .schedule()
                    .clone()
            };
            let capacity = rng.gen_range(1..96usize);
            let pooled =
                try_simulate_lru_with(&mut ws.lru_scratch, &g, &schedule, capacity).unwrap();
            let fresh = try_simulate_lru(&g, &schedule, capacity).unwrap();
            assert_eq!(pooled, fresh, "seed {seed} step {step} cap {capacity}");
        }
    }
}

#[test]
fn granular_into_steps_match_their_allocating_twins() {
    use gdr_core::backbone::Backbone;
    use gdr_core::matching::{
        fifo_matching_into, fifo_matching_with_stats, greedy_matching, greedy_matching_into,
        hopcroft_karp_into, hopcroft_karp_with_stats,
    };
    use gdr_core::recouple::{RestructuredSubgraphs, VertexPartition};
    use gdr_core::schedule::EdgeSchedule;

    for seed in 0..SEEDS {
        let mut rng = SmallRng::seed_from_u64(1_000 + seed);
        let mut ws = Workspace::new();
        for step in 0..3 {
            let g = random_graph(&mut rng, step);
            let ctx = format!("seed {seed} step {step}");

            let stats = fifo_matching_into(&g, &mut ws.matching, &mut ws.match_scratch);
            let (m_fresh, stats_fresh) = fifo_matching_with_stats(&g);
            assert_eq!(ws.matching, m_fresh, "fifo: {ctx}");
            assert_eq!(stats, stats_fresh, "fifo stats: {ctx}");

            let hk_stats = hopcroft_karp_into(&g, &mut ws.matching, &mut ws.match_scratch);
            let (hk_fresh, hk_stats_fresh) = hopcroft_karp_with_stats(&g);
            assert_eq!(ws.matching, hk_fresh, "hk: {ctx}");
            assert_eq!(hk_stats, hk_stats_fresh, "hk stats: {ctx}");

            greedy_matching_into(&g, &mut ws.matching);
            assert_eq!(ws.matching, greedy_matching(&g), "greedy: {ctx}");

            for strategy in [
                BackboneStrategy::Paper,
                BackboneStrategy::KonigExact,
                BackboneStrategy::GreedyDegree,
            ] {
                Backbone::select_into(
                    &g,
                    &ws.matching,
                    strategy,
                    &mut ws.backbone,
                    &mut ws.match_scratch,
                );
                let fresh = Backbone::select(&g, &ws.matching, strategy);
                assert_eq!(ws.backbone, fresh, "{strategy}: {ctx}");
            }

            VertexPartition::from_backbone_into(&g, &ws.backbone, &mut ws.partition);
            assert_eq!(
                ws.partition,
                VertexPartition::from_backbone(&g, &ws.backbone),
                "partition: {ctx}"
            );

            RestructuredSubgraphs::generate_into(
                &g,
                &ws.backbone,
                &mut ws.subgraphs,
                &mut ws.recouple_scratch,
            );
            let fresh = RestructuredSubgraphs::generate(&g, &ws.backbone);
            assert_eq!(ws.subgraphs, fresh, "subgraphs: {ctx}");

            EdgeSchedule::restructured_into(&ws.subgraphs, &mut ws.edges);
            assert_eq!(
                ws.edges.as_slice(),
                EdgeSchedule::restructured(&ws.subgraphs).edges(),
                "schedule: {ctx}"
            );
        }
    }
}
