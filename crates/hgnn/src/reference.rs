//! Functional reference execution of the four HGNN stages.
//!
//! This is the numerical oracle: it computes FP → NA → SF exactly (dense
//! f32), so the restructured execution orders produced by `gdr-core` can
//! be checked for *semantic equivalence* — restructuring must change only
//! the order of commutative accumulations, never the result (up to f32
//! reassociation tolerance).
//!
//! Run it on scaled-down datasets; the full-size graphs are for the
//! simulators, which never materialize features.

use std::collections::HashMap;

use gdr_hetgraph::{BipartiteGraph, Edge, HeteroGraph, VertexTypeId};

use crate::features::raw_features;
use crate::model::{ModelConfig, ModelKind};
use crate::tensor::{axpy, dot, leaky_relu, softmax, Matrix};

/// Functional HGNN executor.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::datasets::Dataset;
/// use gdr_hgnn::model::{ModelConfig, ModelKind};
/// use gdr_hgnn::reference::HgnnReference;
///
/// let g = Dataset::Acm.build_scaled(7, 0.02);
/// let hgnn = HgnnReference::new(ModelConfig::paper(ModelKind::Rgcn), 7);
/// let out = hgnn.run(&g);
/// assert!(!out.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HgnnReference {
    cfg: ModelConfig,
    seed: u64,
}

impl HgnnReference {
    /// Creates an executor with deterministic weights derived from `seed`.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        Self { cfg, seed }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// **FP stage** for one vertex type: raw features (or an embedding
    /// table for featureless types) projected to `hidden_dim`.
    pub fn project_type(&self, count: usize, in_dim: usize, type_tag: u64) -> Matrix {
        let h = self.cfg.hidden_dim;
        if in_dim == 0 {
            // learned embedding table substitution
            return Matrix::random(count, h, 0.5, self.seed ^ 0xE33D ^ type_tag);
        }
        let x = raw_features(count, in_dim, self.seed, type_tag);
        let scale = (1.0 / in_dim as f32).sqrt();
        let w = Matrix::random(in_dim, h, scale, self.seed ^ 0x11AA ^ type_tag);
        x.matmul(&w)
    }

    /// Per-edge NA weights of a semantic graph, in a `(src, dst) -> α`
    /// map. RGCN uses `1/indeg(dst)`; the attention models use
    /// per-destination softmax over LeakyReLU logits (Simple-HGN adds a
    /// relation-embedding term to every logit).
    pub fn edge_weights(
        &self,
        g: &BipartiteGraph,
        src_feats: &Matrix,
        dst_feats: &Matrix,
        rel_tag: u64,
    ) -> HashMap<(u32, u32), f32> {
        let mut weights = HashMap::with_capacity(g.edge_count());
        match self.cfg.kind {
            ModelKind::Rgcn => {
                for d in 0..g.dst_count() {
                    let indeg = g.in_degree(d);
                    if indeg == 0 {
                        continue;
                    }
                    let w = 1.0 / indeg as f32;
                    for &s in g.in_neighbors(d) {
                        weights.insert((s, d as u32), w);
                    }
                }
            }
            ModelKind::Rgat | ModelKind::SimpleHgn => {
                let h = self.cfg.hidden_dim;
                let a_src = Matrix::random(1, h, 0.5, self.seed ^ 0xA51C ^ rel_tag);
                let a_dst = Matrix::random(1, h, 0.5, self.seed ^ 0xAD57 ^ rel_tag);
                let rel_term = if self.cfg.kind == ModelKind::SimpleHgn {
                    let a_edge = Matrix::random(1, self.cfg.edge_dim, 0.5, self.seed ^ 0xED6E);
                    let r_emb =
                        Matrix::random(1, self.cfg.edge_dim, 0.5, self.seed ^ 0x4E1 ^ rel_tag);
                    dot(a_edge.row(0), r_emb.row(0))
                } else {
                    0.0
                };
                // source-side logit halves are reusable across edges
                let src_logit: Vec<f32> = (0..g.src_count())
                    .map(|s| dot(a_src.row(0), src_feats.row(s)))
                    .collect();
                for d in 0..g.dst_count() {
                    let nbrs = g.in_neighbors(d);
                    if nbrs.is_empty() {
                        continue;
                    }
                    let dst_logit = dot(a_dst.row(0), dst_feats.row(d));
                    let mut logits: Vec<f32> = nbrs
                        .iter()
                        .map(|&s| leaky_relu(src_logit[s as usize] + dst_logit + rel_term))
                        .collect();
                    softmax(&mut logits);
                    for (&s, &w) in nbrs.iter().zip(&logits) {
                        weights.insert((s, d as u32), w);
                    }
                }
            }
        }
        weights
    }

    /// **NA stage** over one semantic graph in the natural
    /// destination-major order.
    pub fn neighbor_aggregation(
        &self,
        g: &BipartiteGraph,
        src_feats: &Matrix,
        dst_feats: &Matrix,
        rel_tag: u64,
    ) -> Matrix {
        let weights = self.edge_weights(g, src_feats, dst_feats, rel_tag);
        let mut out = Matrix::zeros(g.dst_count(), self.cfg.hidden_dim);
        for d in 0..g.dst_count() {
            for &s in g.in_neighbors(d) {
                let w = weights[&(s, d as u32)];
                axpy(out.row_mut(d), w, src_feats.row(s as usize));
            }
        }
        self.finish_na(g, &mut out, dst_feats);
        out
    }

    /// **NA stage** accumulating in an explicit edge order (for checking
    /// that restructured schedules preserve semantics).
    pub fn na_with_schedule(
        &self,
        g: &BipartiteGraph,
        order: &[Edge],
        src_feats: &Matrix,
        dst_feats: &Matrix,
        rel_tag: u64,
    ) -> Matrix {
        let weights = self.edge_weights(g, src_feats, dst_feats, rel_tag);
        let mut out = Matrix::zeros(g.dst_count(), self.cfg.hidden_dim);
        for e in order {
            let w = weights[&(e.src.raw(), e.dst.raw())];
            axpy(out.row_mut(e.dst.index()), w, src_feats.row(e.src.index()));
        }
        self.finish_na(g, &mut out, dst_feats);
        out
    }

    /// Simple-HGN's residual connection (a no-op for the other models).
    fn finish_na(&self, g: &BipartiteGraph, out: &mut Matrix, dst_feats: &Matrix) {
        if self.cfg.kind == ModelKind::SimpleHgn {
            for d in 0..g.dst_count() {
                if g.in_degree(d) > 0 {
                    axpy(out.row_mut(d), 1.0, dst_feats.row(d));
                }
            }
        }
    }

    /// **SF stage**: fuses the NA results of the semantic graphs sharing a
    /// destination type (elementwise mean).
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty or shapes disagree.
    pub fn semantic_fusion(&self, results: &[Matrix]) -> Matrix {
        let first = results.first().expect("fusing at least one semantic graph");
        let mut out = Matrix::zeros(first.rows(), first.cols());
        for r in results {
            assert_eq!(
                (r.rows(), r.cols()),
                (out.rows(), out.cols()),
                "semantic fusion shape mismatch"
            );
            for i in 0..r.rows() {
                axpy(out.row_mut(i), 1.0, r.row(i));
            }
        }
        let k = 1.0 / results.len() as f32;
        for i in 0..out.rows() {
            for v in out.row_mut(i) {
                *v *= k;
            }
        }
        out
    }

    /// End-to-end SGB → FP → NA → SF over a heterogeneous graph; returns
    /// the fused embedding per destination vertex type.
    pub fn run(&self, het: &HeteroGraph) -> HashMap<VertexTypeId, Matrix> {
        let schema = het.schema();
        // FP once per type (HiHGNN reuses projections across semantic graphs).
        let mut projected: HashMap<VertexTypeId, Matrix> = HashMap::new();
        for (i, vt) in schema.vertex_types().iter().enumerate() {
            let ty = VertexTypeId::new(i as u16);
            projected.insert(
                ty,
                self.project_type(vt.count(), vt.feature_dim(), i as u64),
            );
        }
        // NA per semantic graph, grouped by destination type.
        let mut per_dst: HashMap<VertexTypeId, Vec<Matrix>> = HashMap::new();
        for sg in het.all_semantic_graphs() {
            let (src_ty, dst_ty) = (
                sg.src_ty().expect("SGB attaches provenance"),
                sg.dst_ty().expect("SGB attaches provenance"),
            );
            let rel_tag = sg.relation().map(|r| r.index() as u64).unwrap_or(0);
            let na =
                self.neighbor_aggregation(&sg, &projected[&src_ty], &projected[&dst_ty], rel_tag);
            per_dst.entry(dst_ty).or_default().push(na);
        }
        per_dst
            .into_iter()
            .map(|(ty, mats)| (ty, self.semantic_fusion(&mats)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdr_hetgraph::datasets::Dataset;
    use gdr_hetgraph::gen::PowerLawConfig;

    fn toy_setup(kind: ModelKind) -> (BipartiteGraph, HgnnReference, Matrix, Matrix) {
        let g = PowerLawConfig::new(40, 30, 160)
            .dst_alpha(0.8)
            .generate("t", 5);
        let hgnn = HgnnReference::new(ModelConfig::paper(kind), 11);
        let src = Matrix::random(40, 64, 1.0, 1);
        let dst = Matrix::random(30, 64, 1.0, 2);
        (g, hgnn, src, dst)
    }

    #[test]
    fn attention_weights_sum_to_one_per_destination() {
        for kind in [ModelKind::Rgat, ModelKind::SimpleHgn] {
            let (g, hgnn, src, dst) = toy_setup(kind);
            let w = hgnn.edge_weights(&g, &src, &dst, 0);
            for d in 0..g.dst_count() {
                let nbrs = g.in_neighbors(d);
                if nbrs.is_empty() {
                    continue;
                }
                let sum: f32 = nbrs.iter().map(|&s| w[&(s, d as u32)]).sum();
                assert!((sum - 1.0).abs() < 1e-5, "{kind}: dst {d} sums to {sum}");
            }
        }
    }

    #[test]
    fn rgcn_weights_are_inverse_degree() {
        let (g, hgnn, src, dst) = toy_setup(ModelKind::Rgcn);
        let w = hgnn.edge_weights(&g, &src, &dst, 0);
        for d in 0..g.dst_count() {
            for &s in g.in_neighbors(d) {
                let expect = 1.0 / g.in_degree(d) as f32;
                assert!((w[&(s, d as u32)] - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn na_is_order_independent() {
        for kind in ModelKind::ALL {
            let (g, hgnn, src, dst) = toy_setup(kind);
            let reference = hgnn.neighbor_aggregation(&g, &src, &dst, 3);
            // reversed edge order
            let mut edges: Vec<Edge> = g.iter_edges().collect();
            edges.reverse();
            let permuted = hgnn.na_with_schedule(&g, &edges, &src, &dst, 3);
            let diff = reference.max_abs_diff(&permuted);
            assert!(diff < 1e-4, "{kind}: reassociation drift {diff}");
        }
    }

    #[test]
    fn simple_hgn_residual_applied() {
        let (g, hgnn, src, dst) = toy_setup(ModelKind::SimpleHgn);
        let (_, plain, _, _) = toy_setup(ModelKind::Rgat);
        let shgn = hgnn.neighbor_aggregation(&g, &src, &dst, 0);
        let rgat = plain.neighbor_aggregation(&g, &src, &dst, 0);
        // find a destination with in-edges: residual must shift the result
        let d = (0..g.dst_count()).find(|&d| g.in_degree(d) > 0).unwrap();
        assert!(shgn.row(d) != rgat.row(d));
    }

    #[test]
    fn fusion_is_mean() {
        let hgnn = HgnnReference::new(ModelConfig::paper(ModelKind::Rgcn), 1);
        let a = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        let b = Matrix::from_vec(1, 2, vec![4.0, 8.0]);
        let f = hgnn.semantic_fusion(&[a, b]);
        assert_eq!(f.data(), &[3.0, 6.0]);
    }

    #[test]
    fn end_to_end_on_scaled_datasets() {
        for kind in ModelKind::ALL {
            let het = Dataset::Imdb.build_scaled(3, 0.02);
            let hgnn = HgnnReference::new(ModelConfig::paper(kind), 3);
            let out = hgnn.run(&het);
            // every vertex type that is a destination of some relation
            assert!(!out.is_empty(), "{kind}");
            for m in out.values() {
                assert_eq!(m.cols(), 64);
                assert!(m.data().iter().all(|x| x.is_finite()), "{kind}");
            }
        }
    }

    #[test]
    fn featureless_types_get_embeddings() {
        let hgnn = HgnnReference::new(ModelConfig::paper(ModelKind::Rgcn), 9);
        let p = hgnn.project_type(10, 0, 4);
        assert_eq!((p.rows(), p.cols()), (10, 64));
        assert!(p.data().iter().any(|&x| x != 0.0));
    }
}
