//! Workload characterization: the per-stage work an HGNN inference
//! presents to a hardware platform.
//!
//! The accelerator and GPU models never execute features — they charge
//! compute and memory traffic from these descriptors plus the access
//! traces the graph topology induces.

use gdr_hetgraph::{BipartiteGraph, HeteroGraph};

use crate::model::ModelConfig;

/// Static description of one semantic graph's workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgWork {
    /// Semantic graph label.
    pub name: String,
    /// Source-space size.
    pub src_count: usize,
    /// Destination-space size.
    pub dst_count: usize,
    /// Edge count.
    pub edges: usize,
    /// Sources with at least one out-edge (the set FP must project).
    pub touched_src: usize,
    /// Destinations with at least one in-edge.
    pub touched_dst: usize,
    /// Raw feature dimension of the source type (0 = featureless).
    pub src_in_dim: usize,
    /// Raw feature dimension of the destination type.
    pub dst_in_dim: usize,
    /// Source vertex type index (for cross-graph reuse analysis).
    pub src_ty: usize,
    /// Destination vertex type index.
    pub dst_ty: usize,
}

impl SgWork {
    /// Extracts the descriptor from a semantic graph and its schema
    /// context.
    pub fn from_graph(g: &BipartiteGraph, src_in_dim: usize, dst_in_dim: usize) -> Self {
        Self {
            name: g.name().to_string(),
            src_count: g.src_count(),
            dst_count: g.dst_count(),
            edges: g.edge_count(),
            touched_src: (0..g.src_count()).filter(|&s| g.out_degree(s) > 0).count(),
            touched_dst: (0..g.dst_count()).filter(|&d| g.in_degree(d) > 0).count(),
            src_in_dim,
            dst_in_dim,
            src_ty: g.src_ty().map(|t| t.index()).unwrap_or(usize::MAX),
            dst_ty: g.dst_ty().map(|t| t.index()).unwrap_or(usize::MAX),
        }
    }
}

/// The full workload of one (model, dataset) pair.
///
/// # Examples
///
/// ```
/// use gdr_hetgraph::datasets::Dataset;
/// use gdr_hgnn::model::{ModelConfig, ModelKind};
/// use gdr_hgnn::workload::Workload;
///
/// let het = Dataset::Acm.build_scaled(1, 0.05);
/// let w = Workload::from_hetero(ModelConfig::paper(ModelKind::Rgcn), &het);
/// assert_eq!(w.graphs().len(), 8); // ACM has 8 relations
/// assert!(w.total_na_ops() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    model: ModelConfig,
    dataset: String,
    graphs: Vec<SgWork>,
}

impl Workload {
    /// Builds the workload of every relation's semantic graph.
    pub fn from_hetero(model: ModelConfig, het: &HeteroGraph) -> Self {
        let schema = het.schema();
        let graphs = het
            .all_semantic_graphs()
            .iter()
            .map(|sg| {
                let sd = schema
                    .vertex_type(sg.src_ty().expect("provenance"))
                    .expect("schema type")
                    .feature_dim();
                let dd = schema
                    .vertex_type(sg.dst_ty().expect("provenance"))
                    .expect("schema type")
                    .feature_dim();
                SgWork::from_graph(sg, sd, dd)
            })
            .collect();
        Self {
            model,
            dataset: het.name().to_string(),
            graphs,
        }
    }

    /// Model configuration of this workload.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Dataset name.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Per-semantic-graph descriptors, in SGB order.
    pub fn graphs(&self) -> &[SgWork] {
        &self.graphs
    }

    /// FP MACs for one semantic graph, assuming no cross-graph reuse
    /// (both endpoint sets projected).
    pub fn fp_macs(&self, sg: &SgWork) -> u64 {
        sg.touched_src as u64 * self.model.fp_macs_per_vertex(sg.src_in_dim)
            + sg.touched_dst as u64 * self.model.fp_macs_per_vertex(sg.dst_in_dim)
    }

    /// FP raw-feature bytes read from DRAM for one semantic graph.
    pub fn fp_read_bytes(&self, sg: &SgWork) -> u64 {
        (sg.touched_src as u64 * sg.src_in_dim as u64
            + sg.touched_dst as u64 * sg.dst_in_dim as u64)
            * 4
    }

    /// Projected-feature bytes FP writes for one semantic graph.
    pub fn fp_write_bytes(&self, sg: &SgWork) -> u64 {
        (sg.touched_src + sg.touched_dst) as u64 * self.model.projected_bytes() as u64
    }

    /// NA MAC-equivalent ops for one semantic graph.
    pub fn na_ops(&self, sg: &SgWork) -> u64 {
        sg.edges as u64 * self.model.na_ops_per_edge()
    }

    /// SF MAC-equivalent ops for one semantic graph's contribution.
    pub fn sf_ops(&self, sg: &SgWork) -> u64 {
        sg.touched_dst as u64 * self.model.sf_ops_per_vertex()
    }

    /// Total FP MACs across semantic graphs (no reuse).
    pub fn total_fp_macs(&self) -> u64 {
        self.graphs.iter().map(|g| self.fp_macs(g)).sum()
    }

    /// Total NA ops across semantic graphs.
    pub fn total_na_ops(&self) -> u64 {
        self.graphs.iter().map(|g| self.na_ops(g)).sum()
    }

    /// Total SF ops across semantic graphs.
    pub fn total_sf_ops(&self) -> u64 {
        self.graphs.iter().map(|g| self.sf_ops(g)).sum()
    }

    /// Total edges across semantic graphs.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(|g| g.edges).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use gdr_hetgraph::datasets::Dataset;

    fn workload(kind: ModelKind) -> Workload {
        let het = Dataset::Dblp.build_scaled(2, 0.05);
        Workload::from_hetero(ModelConfig::paper(kind), &het)
    }

    #[test]
    fn descriptors_cover_all_relations() {
        let w = workload(ModelKind::Rgcn);
        assert_eq!(w.graphs().len(), 6);
        assert_eq!(w.dataset(), "DBLP");
        for sg in w.graphs() {
            assert!(sg.touched_src <= sg.src_count);
            assert!(sg.touched_dst <= sg.dst_count);
            assert!(sg.edges > 0);
        }
    }

    #[test]
    fn na_work_scales_with_model() {
        let rgcn = workload(ModelKind::Rgcn).total_na_ops();
        let rgat = workload(ModelKind::Rgat).total_na_ops();
        let shgn = workload(ModelKind::SimpleHgn).total_na_ops();
        assert!(rgcn < rgat && rgat < shgn);
    }

    #[test]
    fn fp_bytes_track_feature_dims() {
        let w = workload(ModelKind::Rgcn);
        // the P->A graph reads paper(4231-dim) sources and author(334-dim) dsts
        let pa = w.graphs().iter().find(|g| g.name == "P->A").unwrap();
        assert_eq!(pa.src_in_dim, 4231);
        assert_eq!(pa.dst_in_dim, 334);
        let bytes = w.fp_read_bytes(pa);
        assert_eq!(
            bytes,
            (pa.touched_src as u64 * 4231 + pa.touched_dst as u64 * 334) * 4
        );
    }

    #[test]
    fn totals_are_sums() {
        let w = workload(ModelKind::Rgat);
        let fp: u64 = w.graphs().iter().map(|g| w.fp_macs(g)).sum();
        assert_eq!(fp, w.total_fp_macs());
        let edges: usize = w.graphs().iter().map(|g| g.edges).sum();
        assert_eq!(edges, w.total_edges());
        assert!(w.total_sf_ops() > 0);
    }
}
