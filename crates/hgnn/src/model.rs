//! HGNN model descriptions: RGCN, RGAT and Simple-HGN.
//!
//! The paper evaluates three models (§5.1), configured as in HiHGNN:
//! hidden dimension 64, 8 attention heads for the attention models. A
//! [`ModelConfig`] fully determines both the functional reference
//! semantics and the per-stage work the accelerator models charge.

/// The three evaluated HGNN models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// Relational GCN: degree-normalized mean aggregation per relation.
    Rgcn,
    /// Relational GAT: per-relation additive attention.
    Rgat,
    /// Simple-HGN: GAT plus learned edge-type embeddings in the attention
    /// logits and a residual connection.
    SimpleHgn,
}

impl ModelKind {
    /// All models in the paper's presentation order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Rgcn, ModelKind::Rgat, ModelKind::SimpleHgn];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Rgcn => "RGCN",
            ModelKind::Rgat => "RGAT",
            ModelKind::SimpleHgn => "Simple-HGN",
        }
    }

    /// Whether the NA stage computes attention coefficients.
    pub fn uses_attention(self) -> bool {
        !matches!(self, ModelKind::Rgcn)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full model configuration.
///
/// # Examples
///
/// ```
/// use gdr_hgnn::model::{ModelConfig, ModelKind};
/// let cfg = ModelConfig::paper(ModelKind::Rgat);
/// assert_eq!(cfg.hidden_dim, 64);
/// assert_eq!(cfg.heads, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Which model.
    pub kind: ModelKind,
    /// Hidden (projected) dimension per head-group.
    pub hidden_dim: usize,
    /// Attention heads (1 for RGCN).
    pub heads: usize,
    /// Edge-type embedding dimension (Simple-HGN only, 0 otherwise).
    pub edge_dim: usize,
    /// Network depth. Layer 1 projects from the raw feature dimensions;
    /// deeper layers project from `hidden_dim` and repeat NA + SF over
    /// the same topology (this is why the NA stage dominates inference,
    /// the paper's §3 motivation).
    pub layers: usize,
}

impl ModelConfig {
    /// The configuration used throughout the paper's evaluation
    /// (following HiHGNN: hidden 64, 8 heads for attention models,
    /// edge-type embedding 64 for Simple-HGN).
    pub fn paper(kind: ModelKind) -> Self {
        match kind {
            ModelKind::Rgcn => Self {
                kind,
                hidden_dim: 64,
                heads: 1,
                edge_dim: 0,
                layers: 2,
            },
            ModelKind::Rgat => Self {
                kind,
                hidden_dim: 64,
                heads: 8,
                edge_dim: 0,
                layers: 2,
            },
            ModelKind::SimpleHgn => Self {
                kind,
                hidden_dim: 64,
                heads: 8,
                edge_dim: 64,
                layers: 2,
            },
        }
    }

    /// Bytes of one projected feature vector (fp32, all heads concatenated
    /// at `hidden_dim` total — HiHGNN stores the concatenated projection).
    pub fn projected_bytes(&self) -> usize {
        self.hidden_dim * 4
    }

    /// MAC operations the FP stage spends projecting one vertex with raw
    /// feature dimension `in_dim` (an `in_dim × hidden` dense product; a
    /// featureless type, `in_dim == 0`, becomes an embedding-table lookup
    /// charged as one `hidden`-wide row copy).
    pub fn fp_macs_per_vertex(&self, in_dim: usize) -> u64 {
        if in_dim == 0 {
            self.hidden_dim as u64
        } else {
            (in_dim * self.hidden_dim) as u64
        }
    }

    /// MAC-equivalent operations the NA stage spends per edge.
    pub fn na_ops_per_edge(&self) -> u64 {
        let h = self.hidden_dim as u64;
        match self.kind {
            // scale + accumulate
            ModelKind::Rgcn => 2 * h,
            // per-edge attention logit (2 dots over hidden) + softmax share
            // + weighted accumulate, across heads sharing the hidden dim
            ModelKind::Rgat => 4 * h + 2 * self.heads as u64,
            // RGAT plus the edge-type embedding term in the logit
            ModelKind::SimpleHgn => 5 * h + 3 * self.heads as u64,
        }
    }

    /// MAC-equivalent operations the SF stage spends per destination
    /// vertex per contributing semantic graph (elementwise fuse, plus a
    /// semantic-attention dot for the attention models).
    pub fn sf_ops_per_vertex(&self) -> u64 {
        let h = self.hidden_dim as u64;
        match self.kind {
            ModelKind::Rgcn => h,
            ModelKind::Rgat | ModelKind::SimpleHgn => 2 * h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let rgcn = ModelConfig::paper(ModelKind::Rgcn);
        assert_eq!(rgcn.heads, 1);
        assert_eq!(rgcn.layers, 2);
        assert!(!rgcn.kind.uses_attention());
        let rgat = ModelConfig::paper(ModelKind::Rgat);
        assert!(rgat.kind.uses_attention());
        assert_eq!(rgat.edge_dim, 0);
        let shgn = ModelConfig::paper(ModelKind::SimpleHgn);
        assert_eq!(shgn.edge_dim, 64);
        assert_eq!(shgn.projected_bytes(), 256);
    }

    #[test]
    fn work_ordering_matches_model_complexity() {
        let ops: Vec<u64> = ModelKind::ALL
            .iter()
            .map(|&k| ModelConfig::paper(k).na_ops_per_edge())
            .collect();
        assert!(ops[0] < ops[1] && ops[1] < ops[2], "{ops:?}");
    }

    #[test]
    fn featureless_projection_is_embedding_lookup() {
        let cfg = ModelConfig::paper(ModelKind::Rgcn);
        assert_eq!(cfg.fp_macs_per_vertex(0), 64);
        assert_eq!(cfg.fp_macs_per_vertex(334), 334 * 64);
    }

    #[test]
    fn names_and_order() {
        assert_eq!(ModelKind::Rgcn.to_string(), "RGCN");
        assert_eq!(ModelKind::SimpleHgn.name(), "Simple-HGN");
        assert_eq!(ModelKind::ALL[1], ModelKind::Rgat);
    }
}
