//! Minimal dense linear algebra for the functional HGNN reference.
//!
//! No BLAS, no SIMD intrinsics — this is a correctness oracle, not a
//! performance path. The accelerator models never call into it; they only
//! count work.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use gdr_hgnn::tensor::Matrix;
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.get(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Deterministic pseudo-random matrix with entries in `[-scale, scale]`
    /// (Glorot-ish init for the reference models).
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data length mismatch");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrowed row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Maximum absolute elementwise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out += scale * add`, elementwise.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(out: &mut [f32], scale: f32, add: &[f32]) {
    assert_eq!(out.len(), add.len(), "axpy length mismatch");
    for (o, &a) in out.iter_mut().zip(add) {
        *o += scale * a;
    }
}

/// LeakyReLU with the conventional 0.01 negative slope.
pub fn leaky_relu(x: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        0.01 * x
    }
}

/// Numerically-stable softmax in place; no-op on an empty slice.
pub fn softmax(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 0.5, 1);
        let b = Matrix::random(4, 4, 0.5, 1);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&x| x.abs() <= 0.5));
        assert_ne!(a, Matrix::random(4, 4, 0.5, 2));
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax(&mut xs);
        let s: f32 = xs.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        let mut empty: Vec<f32> = vec![];
        softmax(&mut empty); // must not panic
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut xs = vec![1000.0, 1001.0];
        softmax(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[1.0, 2.0]);
        assert_eq!(out, vec![3.0, 5.0]);
        assert_eq!(leaky_relu(5.0), 5.0);
        assert_eq!(leaky_relu(-1.0), -0.01);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b.set(1, 1, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(b.get(1, 1), 0.25);
    }

    #[test]
    #[should_panic(expected = "shape/data length mismatch")]
    fn from_vec_validates() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
