//! Deterministic synthetic feature tables.
//!
//! Real HGB node features are replaced by seeded pseudo-random tables with
//! the exact dimensionalities of Table 2 (the evaluation measures data
//! movement and compute, never accuracy, so feature *values* only need to
//! be deterministic and well-scaled).

use crate::tensor::Matrix;

/// Generates the raw feature table of one vertex type: `count × dim`,
/// entries in `[-1, 1]`, fully determined by `(seed, type_tag)`.
///
/// A featureless type (`dim == 0`) yields a `count × 0` matrix; feature
/// projection substitutes a learned embedding for it (see
/// [`crate::reference::HgnnReference`]).
///
/// # Examples
///
/// ```
/// use gdr_hgnn::features::raw_features;
/// let f = raw_features(10, 16, 42, 0);
/// assert_eq!((f.rows(), f.cols()), (10, 16));
/// assert_eq!(f, raw_features(10, 16, 42, 0));
/// ```
pub fn raw_features(count: usize, dim: usize, seed: u64, type_tag: u64) -> Matrix {
    if dim == 0 {
        return Matrix::zeros(count, 0);
    }
    Matrix::random(count, dim, 1.0, seed ^ type_tag.wrapping_mul(0x9E37_79B9))
}

/// Bytes occupied by one raw feature vector of `dim` fp32 entries.
pub fn raw_feature_bytes(dim: usize) -> usize {
    dim * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_type() {
        let a = raw_features(5, 8, 1, 0);
        let b = raw_features(5, 8, 1, 1);
        assert_ne!(a, b, "type tags must decorrelate tables");
        assert_eq!(a, raw_features(5, 8, 1, 0));
    }

    #[test]
    fn featureless_types_are_empty() {
        let f = raw_features(7, 0, 1, 2);
        assert_eq!((f.rows(), f.cols()), (7, 0));
        assert_eq!(raw_feature_bytes(0), 0);
        assert_eq!(raw_feature_bytes(64), 256);
    }

    #[test]
    fn values_bounded() {
        let f = raw_features(20, 20, 3, 3);
        assert!(f.data().iter().all(|&x| x.abs() <= 1.0));
    }
}
