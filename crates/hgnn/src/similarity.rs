//! Semantic graph similarity and HiHGNN's reuse-aware execution order.
//!
//! HiHGNN "strategically schedules the execution order of semantic graphs
//! based on their similarity to exploit data reusability": consecutive
//! semantic graphs sharing vertex types reuse projected features and
//! per-type FP weights still resident on chip. This module scores that
//! similarity and produces the greedy similarity-chained order.

use crate::workload::SgWork;

/// Similarity of two semantic graphs in `[0, 1]`: Jaccard overlap of
/// their endpoint vertex-type sets, weighted toward shared *source* types
/// (whose projected features dominate NA-stage traffic).
///
/// # Examples
///
/// ```
/// use gdr_hgnn::similarity::similarity;
/// use gdr_hgnn::workload::SgWork;
/// # fn sg(src_ty: usize, dst_ty: usize) -> SgWork {
/// #     SgWork { name: String::new(), src_count: 1, dst_count: 1, edges: 1,
/// #              touched_src: 1, touched_dst: 1, src_in_dim: 8, dst_in_dim: 8,
/// #              src_ty, dst_ty }
/// # }
/// let a = sg(0, 1);
/// let b = sg(1, 0); // reverse relation: same type set
/// assert_eq!(similarity(&a, &b), 1.0);
/// let c = sg(2, 3);
/// assert_eq!(similarity(&a, &c), 0.0);
/// ```
pub fn similarity(a: &SgWork, b: &SgWork) -> f64 {
    let set_a = [a.src_ty, a.dst_ty];
    let set_b = [b.src_ty, b.dst_ty];
    let mut inter = 0usize;
    let mut types_a: Vec<usize> = set_a.to_vec();
    types_a.dedup();
    let mut types_b: Vec<usize> = set_b.to_vec();
    types_b.dedup();
    for t in &types_a {
        if types_b.contains(t) {
            inter += 1;
        }
    }
    let union = types_a.len() + types_b.len() - inter;
    if union == 0 {
        return 0.0;
    }
    let jaccard = inter as f64 / union as f64;
    // bonus when the shared type sits on the source side of both (direct
    // projected-feature reuse)
    let src_bonus = if a.src_ty == b.src_ty { 0.25 } else { 0.0 };
    (jaccard + src_bonus).min(1.0)
}

/// HiHGNN's scheduling: greedy chain starting from the largest semantic
/// graph, each step picking the unscheduled graph most similar to the
/// previously scheduled one. Returns the execution order as indices into
/// `graphs`.
pub fn similarity_order(graphs: &[SgWork]) -> Vec<usize> {
    let n = graphs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    // start from the graph with the most edges (longest to process, so its
    // reuse window matters most)
    let start_pos = remaining
        .iter()
        .enumerate()
        .max_by_key(|&(_, &i)| graphs[i].edges)
        .map(|(p, _)| p)
        .expect("non-empty");
    let mut order = vec![remaining.swap_remove(start_pos)];
    while !remaining.is_empty() {
        let last = *order.last().expect("order non-empty");
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .max_by(|&(_, &a), &(_, &b)| {
                similarity(&graphs[last], &graphs[a])
                    .partial_cmp(&similarity(&graphs[last], &graphs[b]))
                    .expect("similarities are finite")
                    .then(graphs[a].edges.cmp(&graphs[b].edges))
            })
            .expect("remaining non-empty");
        order.push(remaining.swap_remove(pos));
    }
    order
}

/// Fraction of FP projections the similarity order saves by reusing a
/// type's projection from the immediately preceding semantic graph.
pub fn fp_reuse_fraction(graphs: &[SgWork], order: &[usize]) -> f64 {
    if order.is_empty() {
        return 0.0;
    }
    let mut total: u64 = 0;
    let mut reused: u64 = 0;
    for (pos, &i) in order.iter().enumerate() {
        let g = &graphs[i];
        let mut endpoint_types: Vec<(usize, u64)> = vec![
            (g.src_ty, g.touched_src as u64),
            (g.dst_ty, g.touched_dst as u64),
        ];
        if g.src_ty == g.dst_ty {
            endpoint_types.truncate(1);
        }
        for (ty, count) in endpoint_types {
            total += count;
            if pos > 0 {
                let prev = &graphs[order[pos - 1]];
                if prev.src_ty == ty || prev.dst_ty == ty {
                    reused += count;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        reused as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, ModelKind};
    use crate::workload::Workload;
    use gdr_hetgraph::datasets::Dataset;

    fn sg(name: &str, src_ty: usize, dst_ty: usize, edges: usize) -> SgWork {
        SgWork {
            name: name.into(),
            src_count: 10,
            dst_count: 10,
            edges,
            touched_src: 10,
            touched_dst: 10,
            src_in_dim: 8,
            dst_in_dim: 8,
            src_ty,
            dst_ty,
        }
    }

    #[test]
    fn similarity_bounds() {
        let a = sg("a", 0, 1, 5);
        assert_eq!(similarity(&a, &a), 1.0);
        let d = sg("d", 2, 3, 5);
        assert_eq!(similarity(&a, &d), 0.0);
        let half = sg("h", 0, 2, 5);
        assert!(similarity(&a, &half) > 0.0 && similarity(&a, &half) < 1.0);
    }

    #[test]
    fn order_is_a_permutation() {
        let het = Dataset::Acm.build_scaled(1, 0.05);
        let w = Workload::from_hetero(ModelConfig::paper(ModelKind::Rgcn), &het);
        let order = similarity_order(w.graphs());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..w.graphs().len()).collect::<Vec<_>>());
    }

    #[test]
    fn chained_order_beats_scrambled_order_on_reuse() {
        let het = Dataset::Imdb.build_scaled(1, 0.05);
        let w = Workload::from_hetero(ModelConfig::paper(ModelKind::Rgcn), &het);
        let chained = similarity_order(w.graphs());
        // deliberately split the fwd/rev relation pairs apart
        let scrambled: Vec<usize> = vec![0, 2, 4, 1, 3, 5];
        let r_chain = fp_reuse_fraction(w.graphs(), &chained);
        let r_scrambled = fp_reuse_fraction(w.graphs(), &scrambled);
        assert!(
            r_chain >= r_scrambled,
            "chained reuse {r_chain} < scrambled {r_scrambled}"
        );
        assert!(r_chain > 0.5, "every IMDB relation shares the movie type");
    }

    #[test]
    fn empty_input() {
        assert!(similarity_order(&[]).is_empty());
        assert_eq!(fp_reuse_fraction(&[], &[]), 0.0);
    }

    #[test]
    fn starts_with_largest_graph() {
        let graphs = vec![sg("s", 0, 1, 3), sg("m", 1, 2, 50), sg("l", 2, 3, 9)];
        let order = similarity_order(&graphs);
        assert_eq!(order[0], 1);
    }
}
