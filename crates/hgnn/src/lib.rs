//! # gdr-hgnn — HGNN models, reference execution and workloads
//!
//! The HGNN layer of the GDR-HGNN reproduction:
//!
//! * [`model`] — RGCN / RGAT / Simple-HGN configurations (paper §5.1),
//!   with per-stage operation counts;
//! * [`tensor`] / [`features`] — minimal dense math and deterministic
//!   synthetic feature tables;
//! * [`reference`](mod@reference) — functional FP → NA → SF execution, the numerical
//!   oracle proving restructured schedules preserve semantics;
//! * [`workload`] — per-semantic-graph work descriptors the hardware
//!   models charge from;
//! * [`similarity`] — HiHGNN's similarity-based semantic graph execution
//!   order (the reuse scheduling GDR-HGNN piggybacks on).
//!
//! # Examples
//!
//! ```
//! use gdr_hetgraph::datasets::Dataset;
//! use gdr_hgnn::model::{ModelConfig, ModelKind};
//! use gdr_hgnn::workload::Workload;
//!
//! let het = Dataset::Imdb.build_scaled(1, 0.05);
//! let w = Workload::from_hetero(ModelConfig::paper(ModelKind::Rgat), &het);
//! println!("NA ops: {}", w.total_na_ops());
//! assert!(w.total_na_ops() > w.total_sf_ops());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod features;
pub mod model;
pub mod reference;
pub mod similarity;
pub mod tensor;
pub mod workload;

pub use model::{ModelConfig, ModelKind};
pub use reference::HgnnReference;
pub use workload::{SgWork, Workload};
