//! # gdr — the GDR-HGNN reproduction facade
//!
//! One-stop re-export of the whole workspace reproducing *GDR-HGNN: A
//! Heterogeneous Graph Neural Networks Accelerator Frontend with Graph
//! Decoupling and Recoupling* (Xue et al., DAC 2024):
//!
//! | crate | contents |
//! |---|---|
//! | [`hetgraph`] | heterogeneous graph substrate + Table 2 datasets |
//! | [`core`] | graph decoupling / recoupling algorithms |
//! | [`memsim`] | HBM, buffers, FIFOs, CACTI-lite |
//! | [`hgnn`] | RGCN / RGAT / Simple-HGN models and workloads |
//! | [`accel`] | HiHGNN cycle model + T4/A100 baselines |
//! | [`frontend`] | the GDR-HGNN hardware frontend |
//! | [`system`] | combined system + paper experiment drivers |
//!
//! # Examples
//!
//! Restructure a semantic graph and measure the locality win:
//!
//! ```
//! use gdr::hetgraph::datasets::Dataset;
//! use gdr::core::restructure::Restructurer;
//! use gdr::core::schedule::EdgeSchedule;
//! use gdr::core::locality::simulate_lru;
//!
//! let acm = Dataset::Acm.build_scaled(42, 0.05);
//! let sg = acm.all_semantic_graphs().into_iter()
//!     .max_by_key(|g| g.edge_count()).unwrap();
//! let restructured = Restructurer::new().restructure(&sg);
//! let cap = 256;
//! let before = simulate_lru(&sg, &EdgeSchedule::dst_major(&sg), cap);
//! let after = simulate_lru(&sg, restructured.schedule(), cap);
//! assert!(after.misses() <= before.misses());
//! ```

#![warn(missing_docs)]

pub use gdr_accel as accel;
pub use gdr_core as core;
pub use gdr_frontend as frontend;
pub use gdr_hetgraph as hetgraph;
pub use gdr_hgnn as hgnn;
pub use gdr_memsim as memsim;
pub use gdr_system as system;
