//! # gdr — the GDR-HGNN reproduction facade
//!
//! One-stop re-export of the whole workspace reproducing *GDR-HGNN: A
//! Heterogeneous Graph Neural Networks Accelerator Frontend with Graph
//! Decoupling and Recoupling* (Xue et al., DAC 2024):
//!
//! | crate | contents |
//! |---|---|
//! | [`hetgraph`] | heterogeneous graph substrate + Table 2 datasets |
//! | [`core`] | graph decoupling / recoupling algorithms |
//! | [`memsim`] | HBM, buffers, FIFOs, CACTI-lite |
//! | [`hgnn`] | RGCN / RGAT / Simple-HGN models and workloads |
//! | [`accel`] | [`prelude::Platform`] trait, HiHGNN cycle model, T4/A100 baselines |
//! | [`frontend`] | the GDR-HGNN hardware frontend + streaming [`prelude::Session`] |
//! | [`system`] | [`prelude::SystemBuilder`], combined system, experiment drivers |
//! | [`serve`] | online-serving simulation: arrivals, batching, replica scheduling |
//!
//! # Getting started
//!
//! [`prelude`] is the documented entry point: it re-exports the builder,
//! the platform abstraction, and the streaming session API. Assemble a
//! system with [`prelude::SystemBuilder`], then run it end to end or
//! stream the frontend per semantic graph:
//!
//! ```
//! use gdr::prelude::*;
//!
//! // Dataset + model + hardware, validated up front.
//! let system = SystemBuilder::new()
//!     .dataset(Dataset::Acm)
//!     .model(ModelKind::Rgcn)
//!     .scale(0.05)
//!     .build()?;
//!
//! // The combined GDR-HGNN + HiHGNN pipeline…
//! let combined = system.run()?;
//! assert_eq!(combined.report().platform, "HiHGNN+GDR");
//!
//! // …or any other execution platform, behind one trait.
//! let t4 = system.execute_on(&GpuSim::new(T4))?;
//! assert!(combined.report().time_ns < t4.report.time_ns);
//!
//! // …or the frontend alone, streamed one semantic graph at a time.
//! for result in system.session().iter().take(2) {
//!     assert!(result.cycles > 0);
//! }
//! # Ok::<(), gdr::prelude::GdrError>(())
//! ```
//!
//! # Evaluating platforms
//!
//! The report subsystem runs **any** [`prelude::Platform`] list over
//! the dataset × model grid and emits markdown plus the stable
//! `gdr-bench/v1` JSON schema (documented in `bench/README.md`). The
//! same schema backs the `gdr-bench` CLI
//! (`cargo run -p gdr-bench --bin gdr-bench -- --scale test --out bench.json`,
//! with `--baseline old.json --threshold 10%` as the CI perf gate):
//!
//! ```
//! use gdr::prelude::*;
//!
//! // Any subset, any order; the first platform is the speedup baseline.
//! let platforms = select_platforms(&["HiHGNN", "HiHGNN+GDR"])?;
//! let cfg = ExperimentConfig { seed: 42, scale: 0.04 };
//! let report = BenchReport::collect(&platform_refs(&platforms), &cfg)?;
//! assert_eq!(report.points.len(), 9);
//!
//! // Machine-readable out, regression gate back in.
//! let json = report.to_json().to_pretty();
//! let baseline = BenchReport::parse(&json).expect("own output parses");
//! assert!(compare(&baseline, &report, 10.0).passed());
//! # Ok::<(), gdr::prelude::GdrError>(())
//! ```
//!
//! # Serving
//!
//! The serving subsystem ([`serve`]) puts the same platforms behind a
//! request queue: seeded arrival processes over the dataset × model
//! grid, dynamic batching, multi-replica scheduling with
//! partial-replica dataset sharding, a per-replica cross-batch feature
//! cache, and queue-driven autoscaling — all simulated in **virtual
//! time**, so a fixed seed reproduces every latency percentile byte for
//! byte. The `gdr-bench serve` CLI exposes it
//! (`cargo run -p gdr-bench --bin gdr-bench -- serve --scale test
//! --shards 3 --cache-bytes 67108864 --autoscale 4:32:2`), and the
//! canonical suite rides along in grid reports and the CI gate:
//!
//! ```
//! use gdr::prelude::*;
//!
//! let cfg = ExperimentConfig { seed: 7, scale: 0.04 };
//! // Measure the backend once, then shard the dataset grid across
//! // three partial replicas: each holds one dataset, routes its own
//! // traffic, and reuses cached features across batches, while the
//! // autoscaler follows the queue.
//! let harness = ServeHarness::new(&cfg, &["HiHGNN+GDR"])?;
//! let record = harness.run(
//!     &ScenarioSpec {
//!         shards: 3,
//!         cache_bytes: 64 << 20,
//!         autoscale: Some(AutoscaleSpec {
//!             max_replicas: 4,
//!             up_depth: 16,
//!             down_depth: 2,
//!         }),
//!         ..ScenarioSpec::new(
//!             "quickstart",
//!             ArrivalProcess::Poisson { rate_rps: 50_000.0 },
//!             64,
//!             BatchPolicy::SizeCapped { cap: 4 },
//!             SchedPolicy::ShardAffinityPartial,
//!             vec!["HiHGNN+GDR".into(); 3],
//!         )
//!     },
//!     7,
//! )?;
//! let all = record.aggregate().unwrap();
//! assert_eq!(all.metric("completed"), Some(64.0));
//! assert!(all.metric("p99_ns").unwrap() >= all.metric("p50_ns").unwrap());
//! assert_eq!(all.metric("shard_miss_count"), Some(0.0));
//! assert!((0.0..=1.0).contains(&all.metric("cache_hit_rate").unwrap()));
//! # Ok::<(), gdr::prelude::GdrError>(())
//! ```
//!
//! # Reusing a workspace
//!
//! The restructuring hot path — decouple → recouple → schedule — runs
//! **allocation-free at steady state** when a [`prelude::Workspace`] is
//! threaded through it: matching tables, BFS arrays, partition FIFOs,
//! and subgraph CSR storage are rebuilt in place instead of reallocated
//! per graph. [`prelude::Session`] does this automatically (one
//! workspace per [`Session::iter`](prelude::Session::iter) stream, one
//! per [`Session::par_process`](prelude::Session::par_process) worker
//! lane), and long-lived callers — serving replicas, benchmark loops —
//! hold their own and pass it to
//! [`Session::process_with`](prelude::Session::process_with). Results
//! are byte-identical to the allocating paths; the `host` record family
//! of `gdr-bench/v1` (`gdr-bench host`, or any grid report) measures
//! the wall-clock throughput win:
//!
//! ```
//! use gdr::prelude::*;
//!
//! let graphs = Dataset::Acm.build_scaled(1, 0.03).all_semantic_graphs();
//! let session = Session::new(FrontendConfig::default(), &graphs);
//!
//! // One workspace, reused across every graph (and every later rebind).
//! let mut ws = Workspace::new();
//! let reused = session.process_with(&mut ws);
//!
//! // Identical to the allocating path, graph for graph.
//! let fresh = session.process();
//! for (a, b) in reused.per_graph().iter().zip(fresh.per_graph()) {
//!     assert_eq!(a.schedule, b.schedule);
//!     assert_eq!(a.cycles, b.cycles);
//! }
//!
//! // The core algorithm driver has the same shape: results land in the
//! // workspace slots, nothing is reallocated between graphs.
//! use gdr::core::restructure::Restructurer;
//! let restructurer = Restructurer::new();
//! let mut core_ws = gdr::core::workspace::Workspace::new();
//! for g in &graphs {
//!     restructurer.restructure_with(&mut core_ws, g);
//!     assert_eq!(core_ws.edges.len(), g.edge_count());
//!     assert_eq!(core_ws.subgraphs.cover_violations(), 0);
//! }
//! ```
//!
//! Lower-level pieces stay available through the per-crate re-exports —
//! e.g. restructure one semantic graph by hand and measure the
//! locality win:
//!
//! ```
//! use gdr::hetgraph::datasets::Dataset;
//! use gdr::core::restructure::Restructurer;
//! use gdr::core::schedule::EdgeSchedule;
//! use gdr::core::locality::simulate_lru;
//!
//! let acm = Dataset::Acm.build_scaled(42, 0.05);
//! let sg = acm.all_semantic_graphs().into_iter()
//!     .max_by_key(|g| g.edge_count()).unwrap();
//! let restructured = Restructurer::new().restructure(&sg);
//! let cap = 256;
//! let before = simulate_lru(&sg, &EdgeSchedule::dst_major(&sg), cap);
//! let after = simulate_lru(&sg, restructured.schedule(), cap);
//! assert!(after.misses() <= before.misses());
//! ```

#![warn(missing_docs)]

pub use gdr_accel as accel;
pub use gdr_core as core;
pub use gdr_frontend as frontend;
pub use gdr_hetgraph as hetgraph;
pub use gdr_hgnn as hgnn;
pub use gdr_memsim as memsim;
pub use gdr_serve as serve;
pub use gdr_system as system;

/// The single documented entry point: everything needed to build,
/// execute, and compare simulated systems.
///
/// * build: [`SystemBuilder`](prelude::SystemBuilder) →
///   [`System`](prelude::System)
/// * execute: [`Platform`](prelude::Platform)
///   ([`HiHgnnSim`](prelude::HiHgnnSim), [`GpuSim`](prelude::GpuSim),
///   [`CombinedSystem`](prelude::CombinedSystem))
/// * stream: [`Session`](prelude::Session) →
///   [`GraphResult`](prelude::GraphResult) /
///   [`FrontendRun`](prelude::FrontendRun), with
///   [`Workspace`](prelude::Workspace) as the reusable zero-allocation
///   restructuring arena
/// * evaluate: [`run_grid`](prelude::run_grid) /
///   [`run_platforms`](prelude::run_platforms) and
///   [`ExecReport`](prelude::ExecReport)
/// * report: [`BenchReport`](prelude::BenchReport) /
///   [`PaperReport`](prelude::PaperReport) /
///   [`compare`](prelude::compare) (markdown + `gdr-bench/v1` JSON,
///   CI perf gate)
/// * trace: [`TracedRun`](prelude::TracedRun) /
///   [`ChromeTrace`](prelude::ChromeTrace) /
///   [`BreakdownRecord`](prelude::BreakdownRecord) (deterministic
///   per-request lifecycle spans, Perfetto export, latency
///   attribution)
/// * serve: [`ServeHarness`](prelude::ServeHarness) /
///   [`ScenarioSpec`](prelude::ScenarioSpec) /
///   [`ArrivalProcess`](prelude::ArrivalProcess) /
///   [`BatchPolicy`](prelude::BatchPolicy) /
///   [`SchedPolicy`](prelude::SchedPolicy) (online-serving simulation),
///   with [`PoolConfig`](prelude::PoolConfig) /
///   [`ShardMap`](prelude::ShardMap) /
///   [`FeatureCache`](prelude::FeatureCache) /
///   [`AutoscaleSpec`](prelude::AutoscaleSpec) /
///   [`SloSpec`](prelude::SloSpec) shaping the pool (partial-replica
///   sharding, cross-batch feature cache, queue- or SLO-driven
///   autoscaling with drain-time batch migration)
/// * errors: [`GdrError`](prelude::GdrError) /
///   [`GdrResult`](prelude::GdrResult) across all of the above
pub mod prelude {
    pub use gdr_accel::calib::{A100, T4};
    pub use gdr_accel::gpu::{GpuRun, GpuSim};
    pub use gdr_accel::hihgnn::{HiHgnnConfig, HiHgnnRun, HiHgnnSim};
    pub use gdr_accel::platform::{Platform, PlatformRun};
    pub use gdr_accel::report::{geomean, ExecReport, StageBreakdown};
    pub use gdr_core::restructure::Restructurer;
    pub use gdr_core::schedule::EdgeSchedule;
    pub use gdr_frontend::config::FrontendConfig;
    pub use gdr_frontend::pipeline::{FrontendPipeline, FrontendRun, GraphResult};
    pub use gdr_frontend::session::Session;
    pub use gdr_frontend::Workspace;
    pub use gdr_hetgraph::datasets::Dataset;
    pub use gdr_hetgraph::{BipartiteGraph, GdrError, GdrResult, HeteroGraph};
    pub use gdr_hgnn::model::{ModelConfig, ModelKind};
    pub use gdr_hgnn::workload::Workload;
    pub use gdr_serve::metrics::{breakdown_record, request_breakdowns, RequestBreakdown};
    pub use gdr_serve::{
        chrome_trace, default_specs, default_suite, default_suite_with_breakdown, replay,
        scenario_label, ArrivalKind, ArrivalProcess, Assignment, AssignmentLog, AutoscaleSpec,
        BatchPolicy, Batcher, ControlPlane, CostModel, CrashWindow, FaultSpec, FaultVariant,
        FeatureCache, LaneStats, PoolConfig, RecordingSink, ReplayDatasets, ReplayReport,
        ScenarioSpec, SchedPolicy, ServeHarness, ServiceCost, ShardMap, Simulator, SloSpec,
        Slowdown, SweepSpec, TraceEvent, TraceSink, TracedRun, Traffic, TrafficStream,
    };
    pub use gdr_system::builder::{System, SystemBuilder};
    pub use gdr_system::combined::{CombinedRun, CombinedSystem};
    pub use gdr_system::grid::{
        paper_platforms, platform_names, platform_refs, run_grid, run_platforms, select_platforms,
        ExperimentConfig, GridPoint,
    };
    pub use gdr_system::json::Json;
    pub use gdr_system::report::{
        collect_host_records, collect_host_records_traced, compare, dominates, pareto_frontier,
        recommend, BenchReport, BreakdownRecord, BreakdownStage, Comparison, HostRecord,
        PaperReport, ServeRunRecord, ServeScenarioRecord, SweepRecommendation, SweepRecord,
        SweepRowRecord, BREAKDOWN_STAGE_KEYS, HOST_TRACE_PID, SWEEP_OBJECTIVES,
    };
    pub use gdr_system::trace_export::ChromeTrace;
}
