//! Counting-global-allocator proof of the steady-state zero-alloc
//! replay hot path.
//!
//! A test-only `#[global_allocator]` wraps [`System`] and counts every
//! `alloc`/`alloc_zeroed`/`realloc` while armed. The test warms one
//! [`Workspace`] by replaying every dataset's batch a few times — the
//! buffers grow to the working set, the pooled NA buffer sees every
//! fetch tag — then arms the counter and replays N more full passes of
//! the decouple → recouple → schedule → execute path. The count must be
//! **exactly zero**: the replay executor's per-batch step
//! ([`gdr::serve::replay::replay_batch`], the same function the worker
//! lanes run) performs no steady-state heap allocation.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide: a single `#[test]` keeps other tests'
//! allocations out of the armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gdr::core::restructure::Restructurer;
use gdr::core::workspace::Workspace;
use gdr::hetgraph::datasets::Dataset;
use gdr::hgnn::model::ModelKind;
use gdr::serve::replay::{lane_na_sim, replay_batch, ReplayDatasets};
use gdr::serve::request::Cell;
use gdr::serve::scheduler::Assignment;
use gdr::system::grid::ExperimentConfig;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WARMUP_PASSES: usize = 3;
const MEASURED_PASSES: usize = 16;

#[test]
fn replay_hot_path_is_allocation_free_after_warmup() {
    let cfg = ExperimentConfig {
        seed: 11,
        scale: 0.03,
    };
    let datasets = ReplayDatasets::build(&cfg);
    // One batch per dataset — replay work depends only on the cell's
    // dataset, and three cover every semantic-graph working set.
    let batches: Vec<Assignment> = Dataset::ALL
        .iter()
        .enumerate()
        .map(|(i, &dataset)| Assignment {
            replica: i,
            cell: Cell {
                model: ModelKind::ALL[i % ModelKind::ALL.len()],
                dataset,
            },
            warm: true,
            cache_hit: false,
            shard_miss: false,
            request_ids: vec![i as u64],
        })
        .collect();

    let mut ws = Workspace::new();
    let restructurer = Restructurer::new();
    let na_sim = lane_na_sim();

    let mut warm_graphs = 0;
    for _ in 0..WARMUP_PASSES {
        warm_graphs = batches
            .iter()
            .map(|a| replay_batch(&mut ws, &restructurer, &na_sim, &datasets, a))
            .sum();
    }
    assert!(warm_graphs > 0, "warmup replayed no graphs");

    ARMED.store(true, Ordering::SeqCst);
    let mut measured_graphs = 0;
    for _ in 0..MEASURED_PASSES {
        measured_graphs = batches
            .iter()
            .map(|a| replay_batch(&mut ws, &restructurer, &na_sim, &datasets, a))
            .sum::<usize>();
    }
    ARMED.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let reallocs = REALLOCS.load(Ordering::SeqCst);
    assert_eq!(measured_graphs, warm_graphs, "work drifted between passes");
    assert_eq!(
        (allocs, reallocs),
        (0, 0),
        "steady-state replay allocated: {allocs} allocs, {reallocs} reallocs \
         across {MEASURED_PASSES} passes of {measured_graphs} graphs"
    );
}
