//! Property-based tests over the core invariants, on arbitrary random
//! bipartite graphs (not just the paper's datasets).

use gdr::core::backbone::{Backbone, BackboneStrategy};
use gdr::core::locality::{compulsory_misses, simulate_lru};
use gdr::core::matching::{fifo_matching, greedy_matching, hopcroft_karp};
use gdr::core::recouple::RestructuredSubgraphs;
use gdr::core::restructure::{MatcherKind, Restructurer};
use gdr::core::schedule::EdgeSchedule;
use gdr::hetgraph::gen::PowerLawConfig;
use gdr::hetgraph::BipartiteGraph;
use proptest::prelude::*;

/// Strategy: a random bipartite graph with up to 60×60 vertices and up to
/// 400 edges (possibly empty, possibly with duplicates).
fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..60, 1usize..60, 0usize..400, any::<u64>(), 0u8..20).prop_map(
        |(ns, nd, ne, seed, alpha10)| {
            PowerLawConfig::new(ns, nd, ne)
                .dst_alpha(alpha10 as f64 / 10.0)
                .generate("prop", seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_matching_is_maximum(g in arb_graph()) {
        let oracle = hopcroft_karp(&g);
        let fifo = fifo_matching(&g);
        prop_assert!(oracle.is_valid(&g));
        prop_assert!(fifo.is_valid(&g));
        prop_assert_eq!(fifo.size(), oracle.size());
    }

    #[test]
    fn greedy_matching_is_half_approximate(g in arb_graph()) {
        let oracle = hopcroft_karp(&g);
        let greedy = greedy_matching(&g);
        prop_assert!(greedy.is_valid(&g));
        prop_assert!(greedy.is_maximal(&g));
        prop_assert!(2 * greedy.size() >= oracle.size());
    }

    #[test]
    fn konig_cover_size_equals_maximum_matching(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        prop_assert!(b.covers_all_edges(&g));
        prop_assert_eq!(b.len(), m.size());
    }

    #[test]
    fn every_backbone_strategy_is_a_vertex_cover(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        for strat in [
            BackboneStrategy::Paper,
            BackboneStrategy::KonigExact,
            BackboneStrategy::GreedyDegree,
        ] {
            let b = Backbone::select(&g, &m, strat);
            prop_assert!(b.covers_all_edges(&g), "strategy {}", strat);
        }
    }

    #[test]
    fn subgraphs_partition_the_edge_multiset(g in arb_graph()) {
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::Paper);
        let r = RestructuredSubgraphs::generate(&g, &b);
        prop_assert_eq!(r.total_edges(), g.edge_count());
        let mut got: Vec<(u32, u32)> = r
            .iter()
            .flat_map(|(_, sg)| sg.iter_edges().map(|e| (e.src.raw(), e.dst.raw())))
            .collect();
        let mut want: Vec<(u32, u32)> =
            g.iter_edges().map(|e| (e.src.raw(), e.dst.raw())).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn all_schedules_are_permutations(g in arb_graph(), seed in any::<u64>()) {
        let r = Restructurer::new().restructure(&g);
        for sched in [
            EdgeSchedule::dst_major(&g),
            EdgeSchedule::src_major(&g),
            EdgeSchedule::random(&g, seed),
            EdgeSchedule::degree_sorted(&g),
            EdgeSchedule::islandized(&g),
            r.schedule().clone(),
            EdgeSchedule::restructured_backbone_major(r.subgraphs()),
            EdgeSchedule::restructured_tiled(r.subgraphs(), 8),
        ] {
            prop_assert!(sched.is_permutation_of(&g), "{}", sched.name());
        }
    }

    #[test]
    fn lru_misses_bounded_and_monotone(g in arb_graph(), cap in 1usize..64) {
        let sched = EdgeSchedule::dst_major(&g);
        let small = simulate_lru(&g, &sched, cap);
        let big = simulate_lru(&g, &sched, cap * 2);
        // stack property of LRU
        prop_assert!(big.misses() <= small.misses());
        // bounds: compulsory <= misses <= accesses
        prop_assert!(small.misses() >= compulsory_misses(&g));
        prop_assert!(small.misses() <= small.accesses());
    }

    #[test]
    fn all_matchers_produce_covering_restructurings(g in arb_graph()) {
        for matcher in [MatcherKind::Fifo, MatcherKind::HopcroftKarp, MatcherKind::Greedy] {
            let r = Restructurer::new().matcher(matcher).restructure(&g);
            prop_assert!(r.backbone().covers_all_edges(&g), "{}", matcher);
            prop_assert!(r.schedule().is_permutation_of(&g), "{}", matcher);
        }
    }

    #[test]
    fn recursion_preserves_the_permutation_property(g in arb_graph(), depth in 0usize..3) {
        let r = Restructurer::new()
            .recursion_depth(depth)
            .min_recurse_edges(16)
            .restructure(&g);
        prop_assert!(r.schedule().is_permutation_of(&g));
    }
}
