//! Property-based tests over the core invariants, on arbitrary random
//! bipartite graphs (not just the paper's datasets).
//!
//! The build environment cannot fetch `proptest`, so these are hand-rolled
//! property loops: each case derives graph dimensions, edge count, alpha
//! and generator seed from a deterministic per-case seed, giving the same
//! breadth of inputs (empty graphs, duplicates, skewed degrees) with
//! reproducible failures — the panic message names the failing case.

use gdr::core::backbone::{Backbone, BackboneStrategy};
use gdr::core::locality::{compulsory_misses, simulate_lru};
use gdr::core::matching::{fifo_matching, greedy_matching, hopcroft_karp};
use gdr::core::recouple::RestructuredSubgraphs;
use gdr::core::restructure::{MatcherKind, Restructurer};
use gdr::core::schedule::EdgeSchedule;
use gdr::hetgraph::gen::PowerLawConfig;
use gdr::hetgraph::BipartiteGraph;
use gdr::prelude::{FrontendConfig, FrontendPipeline, Session};

const CASES: u64 = 64;

/// Deterministic case expansion (SplitMix64), so every case is
/// reproducible from its index alone.
fn mix(case: u64, salt: u64) -> u64 {
    let mut z = case
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random bipartite graph with up to 60×60 vertices and up to 400 edges
/// (possibly empty, possibly with duplicates).
fn arb_graph(case: u64) -> BipartiteGraph {
    let ns = 1 + (mix(case, 1) % 59) as usize;
    let nd = 1 + (mix(case, 2) % 59) as usize;
    let ne = (mix(case, 3) % 400) as usize;
    let alpha = (mix(case, 4) % 20) as f64 / 10.0;
    let seed = mix(case, 5);
    PowerLawConfig::new(ns, nd, ne)
        .dst_alpha(alpha)
        .generate("prop", seed)
}

#[test]
fn fifo_matching_is_maximum() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let oracle = hopcroft_karp(&g);
        let fifo = fifo_matching(&g);
        assert!(oracle.is_valid(&g), "case {case}");
        assert!(fifo.is_valid(&g), "case {case}");
        assert_eq!(fifo.size(), oracle.size(), "case {case}");
    }
}

#[test]
fn greedy_matching_is_half_approximate() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let oracle = hopcroft_karp(&g);
        let greedy = greedy_matching(&g);
        assert!(greedy.is_valid(&g), "case {case}");
        assert!(greedy.is_maximal(&g), "case {case}");
        assert!(2 * greedy.size() >= oracle.size(), "case {case}");
    }
}

#[test]
fn konig_cover_size_equals_maximum_matching() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::KonigExact);
        assert!(b.covers_all_edges(&g), "case {case}");
        assert_eq!(b.len(), m.size(), "case {case}");
    }
}

#[test]
fn every_backbone_strategy_is_a_vertex_cover() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let m = hopcroft_karp(&g);
        for strat in [
            BackboneStrategy::Paper,
            BackboneStrategy::KonigExact,
            BackboneStrategy::GreedyDegree,
        ] {
            let b = Backbone::select(&g, &m, strat);
            assert!(b.covers_all_edges(&g), "case {case}, strategy {strat}");
        }
    }
}

#[test]
fn subgraphs_partition_the_edge_multiset() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let m = hopcroft_karp(&g);
        let b = Backbone::select(&g, &m, BackboneStrategy::Paper);
        let r = RestructuredSubgraphs::generate(&g, &b);
        assert_eq!(r.total_edges(), g.edge_count(), "case {case}");
        let mut got: Vec<(u32, u32)> = r
            .iter()
            .flat_map(|(_, sg)| sg.iter_edges().map(|e| (e.src.raw(), e.dst.raw())))
            .collect();
        let mut want: Vec<(u32, u32)> =
            g.iter_edges().map(|e| (e.src.raw(), e.dst.raw())).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn all_schedules_are_permutations() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let seed = mix(case, 99);
        let r = Restructurer::new().restructure(&g);
        for sched in [
            EdgeSchedule::dst_major(&g),
            EdgeSchedule::src_major(&g),
            EdgeSchedule::random(&g, seed),
            EdgeSchedule::degree_sorted(&g),
            EdgeSchedule::islandized(&g),
            r.schedule().clone(),
            EdgeSchedule::restructured_backbone_major(r.subgraphs()),
            EdgeSchedule::restructured_tiled(r.subgraphs(), 8),
        ] {
            assert!(sched.is_permutation_of(&g), "case {case}: {}", sched.name());
        }
    }
}

#[test]
fn lru_misses_bounded_and_monotone() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let cap = 1 + (mix(case, 7) % 63) as usize;
        let sched = EdgeSchedule::dst_major(&g);
        let small = simulate_lru(&g, &sched, cap);
        let big = simulate_lru(&g, &sched, cap * 2);
        // stack property of LRU
        assert!(big.misses() <= small.misses(), "case {case}");
        // bounds: compulsory <= misses <= accesses
        assert!(small.misses() >= compulsory_misses(&g), "case {case}");
        assert!(small.misses() <= small.accesses(), "case {case}");
    }
}

#[test]
fn all_matchers_produce_covering_restructurings() {
    for case in 0..CASES {
        let g = arb_graph(case);
        for matcher in [
            MatcherKind::Fifo,
            MatcherKind::HopcroftKarp,
            MatcherKind::Greedy,
        ] {
            let r = Restructurer::new().matcher(matcher).restructure(&g);
            assert!(r.backbone().covers_all_edges(&g), "case {case}, {matcher}");
            assert!(r.schedule().is_permutation_of(&g), "case {case}, {matcher}");
        }
    }
}

#[test]
fn session_streaming_equals_batch_graph_for_graph() {
    // The streaming Session API must be a pure re-packaging of the batch
    // pipeline: same results, same order, on arbitrary graph sets —
    // sequential or parallel.
    for case in 0..CASES / 4 {
        let graphs: Vec<BipartiteGraph> = (0..(mix(case, 10) % 5))
            .map(|i| arb_graph(mix(case, 11 + i)))
            .collect();
        let cfg = FrontendConfig::default();
        let batch = FrontendPipeline::new(cfg.clone()).process_all(&graphs);
        let session = Session::new(cfg, &graphs);

        let streamed: Vec<_> = session.iter().collect();
        let parallel = session.par_process_with(4);
        assert_eq!(streamed.len(), batch.per_graph().len(), "case {case}");
        assert_eq!(
            parallel.per_graph().len(),
            batch.per_graph().len(),
            "case {case}"
        );
        for (i, b) in batch.per_graph().iter().enumerate() {
            for s in [&streamed[i], &parallel.per_graph()[i]] {
                assert_eq!(b.schedule, s.schedule, "case {case}, graph {i}");
                assert_eq!(b.cycles, s.cycles, "case {case}, graph {i}");
                assert_eq!(b.matching_size, s.matching_size, "case {case}, graph {i}");
                assert_eq!(b.backbone_size, s.backbone_size, "case {case}, graph {i}");
                assert_eq!(b.requests, s.requests, "case {case}, graph {i}");
            }
        }
        // aggregates agree too
        assert_eq!(batch.total_cycles(), parallel.total_cycles(), "case {case}");
        assert_eq!(batch.total_bytes(), parallel.total_bytes(), "case {case}");
    }
}

#[test]
fn recursion_preserves_the_permutation_property() {
    for case in 0..CASES {
        let g = arb_graph(case);
        let depth = (mix(case, 8) % 3) as usize;
        let r = Restructurer::new()
            .recursion_depth(depth)
            .min_recurse_edges(16)
            .restructure(&g);
        assert!(
            r.schedule().is_permutation_of(&g),
            "case {case}, depth {depth}"
        );
    }
}
