//! Cross-crate integration tests: the full GDR-HGNN stack end to end.

use gdr::core::backbone::{Backbone, BackboneStrategy};
use gdr::core::matching::hopcroft_karp;
use gdr::core::restructure::Restructurer;
use gdr::core::schedule::EdgeSchedule;
use gdr::frontend::config::FrontendConfig;
use gdr::frontend::pipeline::FrontendPipeline;
use gdr::hetgraph::datasets::Dataset;
use gdr::hgnn::model::{ModelConfig, ModelKind};
use gdr::hgnn::reference::HgnnReference;
use gdr::hgnn::tensor::Matrix;
use gdr::hgnn::workload::Workload;
use gdr::system::combined::CombinedSystem;
use gdr::system::grid::{ExperimentConfig, GridPoint};

const SCALE: f64 = 0.06;

#[test]
fn every_dataset_and_model_runs_end_to_end() {
    for dataset in Dataset::ALL {
        for model in ModelKind::ALL {
            let het = dataset.build_scaled(11, SCALE);
            let workload = Workload::from_hetero(ModelConfig::paper(model), &het);
            let graphs = het.all_semantic_graphs();
            let run = CombinedSystem::default_config().execute(&workload, &graphs);
            let r = run.report();
            assert!(r.time_ns > 0.0, "{model}/{dataset}");
            assert!(r.dram_bytes > 0, "{model}/{dataset}");
            assert!(
                r.bandwidth_utilization > 0.0 && r.bandwidth_utilization <= 1.0,
                "{model}/{dataset}"
            );
        }
    }
}

#[test]
fn frontend_matches_software_restructuring_semantics() {
    // The cycle-level hardware frontend must produce a maximum matching of
    // oracle size and a valid edge-permutation schedule on every semantic
    // graph of every dataset.
    for dataset in Dataset::ALL {
        let het = dataset.build_scaled(5, SCALE);
        let graphs = het.all_semantic_graphs();
        let fe = FrontendPipeline::new(FrontendConfig::default()).process_all(&graphs);
        for (g, fr) in graphs.iter().zip(fe.per_graph()) {
            let oracle = hopcroft_karp(g);
            assert_eq!(
                fr.matching_size,
                oracle.size(),
                "{dataset}/{}: matching below maximum",
                g.name()
            );
            assert!(
                fr.schedule.is_permutation_of(g),
                "{dataset}/{}: schedule lost edges",
                g.name()
            );
        }
    }
}

#[test]
fn restructured_execution_is_numerically_equivalent() {
    // Restructuring only reorders commutative accumulations: the NA result
    // computed in restructured order must match the natural order.
    let het = Dataset::Acm.build_scaled(3, 0.03);
    let graphs = het.all_semantic_graphs();
    for model in ModelKind::ALL {
        let hgnn = HgnnReference::new(ModelConfig::paper(model), 17);
        for (i, g) in graphs.iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            let src = Matrix::random(g.src_count(), 64, 1.0, i as u64);
            let dst = Matrix::random(g.dst_count(), 64, 1.0, 1000 + i as u64);
            let natural = hgnn.neighbor_aggregation(g, &src, &dst, i as u64);
            let restructured = Restructurer::new().restructure(g);
            let reordered =
                hgnn.na_with_schedule(g, restructured.schedule().edges(), &src, &dst, i as u64);
            let diff = natural.max_abs_diff(&reordered);
            assert!(
                diff < 1e-3,
                "{model}/{}: restructured result drifted by {diff}",
                g.name()
            );
        }
    }
}

#[test]
fn backbone_strategies_all_cover_all_datasets() {
    for dataset in Dataset::ALL {
        let het = dataset.build_scaled(7, SCALE);
        for g in het.all_semantic_graphs() {
            let m = hopcroft_karp(&g);
            for strat in [
                BackboneStrategy::Paper,
                BackboneStrategy::KonigExact,
                BackboneStrategy::GreedyDegree,
            ] {
                let b = Backbone::select(&g, &m, strat);
                assert!(
                    b.covers_all_edges(&g),
                    "{dataset}/{} with {strat}",
                    g.name()
                );
            }
        }
    }
}

#[test]
fn platform_ordering_holds_on_a_grid_cell() {
    let p = GridPoint::run(
        ModelKind::Rgat,
        Dataset::Imdb,
        &ExperimentConfig {
            seed: 42,
            scale: SCALE,
        },
    );
    assert!(p.a100.time_ns < p.t4.time_ns);
    assert!(p.hihgnn.time_ns < p.a100.time_ns);
    assert!(p.hihgnn.dram_bytes < p.a100.dram_bytes);
}

#[test]
fn builder_prelude_and_platforms_cover_the_stack() {
    use gdr::prelude::*;

    let system = SystemBuilder::new()
        .dataset(Dataset::Imdb)
        .model(ModelKind::Rgcn)
        .seed(11)
        .scale(SCALE)
        .build()
        .expect("valid configuration");

    // streaming frontend, then the full platform sweep behind the trait
    let frontend = system.session().par_process();
    assert_eq!(frontend.per_graph().len(), system.graphs().len());

    let platforms = paper_platforms();
    let refs: Vec<&dyn Platform> = platforms.iter().map(|p| p.as_ref()).collect();
    let runs = run_platforms(&refs, system.workload(), system.graphs()).unwrap();
    let names: Vec<&str> = runs.iter().map(|r| r.report.platform.as_str()).collect();
    assert_eq!(names, ["T4", "A100", "HiHGNN", "HiHGNN+GDR"]);
    assert!(
        runs[1].report.time_ns < runs[0].report.time_ns,
        "A100 beats T4"
    );
    assert!(
        runs[2].report.time_ns < runs[1].report.time_ns,
        "HiHGNN beats A100"
    );

    // builder validation is typed, not a panic
    let err = SystemBuilder::new().scale(-0.5).build().unwrap_err();
    assert!(matches!(err, GdrError::InvalidConfig { .. }));
}

#[test]
fn restructuring_reduces_na_misses_under_pressure() {
    use gdr::accel::na_engine::NaBufferSim;
    let het = Dataset::Dblp.build_scaled(13, 0.15);
    let g = het
        .all_semantic_graphs()
        .into_iter()
        .max_by_key(|g| g.edge_count())
        .expect("DBLP has relations");
    let r = Restructurer::new().restructure(&g);
    let cap = (r.backbone().len() + 128).max(64);
    let sim = NaBufferSim::new(cap, 8);
    let base = sim.simulate(&g, &EdgeSchedule::dst_major(&g), 0);
    let gdr = sim.simulate(&g, r.schedule(), 0);
    assert!(
        gdr.misses < base.misses,
        "restructured {} >= baseline {}",
        gdr.misses,
        base.misses
    );
}
